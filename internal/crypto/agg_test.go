package crypto_test

import (
	"strings"
	"testing"

	"repro/internal/crypto"
	"repro/internal/intervals"
	"repro/internal/types"
)

// buildAggQC signs quorum votes with the ring's base scheme (as vote transit
// does) and returns both forms of the certificate: the vector original and a
// compacted copy. Voter 1 carries a marker and voter 2 an interval set so
// the aggregation payload grouping sees more than one distinct marker state.
func buildAggQC(t *testing.T, kr *crypto.KeyRing, quorum int) (vector, compact *types.QC) {
	t.Helper()
	var id types.BlockID
	id[0] = 0x5F
	vector = &types.QC{Block: id, Round: 3, Height: 2}
	for i := 0; i < quorum; i++ {
		v := types.Vote{Block: id, Round: 3, Height: 2, Voter: types.ReplicaID(i)}
		switch i {
		case 1:
			v.Marker = 2
		case 2:
			v.HasIntervals = true
			v.Intervals = intervals.New(intervals.Interval{Lo: 1, Hi: 2})
		}
		v.Signature = kr.Signer(v.Voter).Sign(v.SigningPayload())
		vector.Votes = append(vector.Votes, v)
	}
	compact = &types.QC{Block: id, Round: 3, Height: 2,
		Votes: append([]types.Vote(nil), vector.Votes...)}
	if err := crypto.AggregateQC(kr, compact); err != nil {
		t.Fatalf("AggregateQC: %v", err)
	}
	return vector, compact
}

func TestAggregateRoundTripBothSchemes(t *testing.T) {
	for _, scheme := range []string{crypto.SchemeSimAgg, crypto.SchemeEd25519Agg} {
		t.Run(scheme, func(t *testing.T) {
			kr, err := crypto.NewKeyRing(7, 1, scheme)
			if err != nil {
				t.Fatal(err)
			}
			if !crypto.Aggregates(kr) {
				t.Fatal("aggregating ring not detected")
			}
			vector, compact := buildAggQC(t, kr, 5)

			// The vector form still verifies on an aggregating ring: vote
			// transit uses the base scheme unchanged.
			if err := crypto.VerifyQC(kr, vector, 5); err != nil {
				t.Fatalf("vector form rejected: %v", err)
			}
			if compact.Agg == nil {
				t.Fatal("AggregateQC left Agg nil")
			}
			for i := range compact.Votes {
				if compact.Votes[i].Signature != nil {
					t.Fatalf("vote %d kept its signature after aggregation", i)
				}
			}
			if err := crypto.VerifyQC(kr, compact, 5); err != nil {
				t.Fatalf("compact form rejected: %v", err)
			}
			// The batch path routes compact certificates to the same kernel.
			if err := crypto.BatchVerifyQC(kr, compact, 5, 4); err != nil {
				t.Fatalf("compact form rejected by batch path: %v", err)
			}

			// Full wire round trip: markers and intervals must survive into
			// the verified decode.
			dec, rest, err := types.DecodeQC(compact.Encode(nil))
			if err != nil || len(rest) != 0 {
				t.Fatalf("decode: %v (%d trailing)", err, len(rest))
			}
			if err := crypto.VerifyQC(kr, dec, 5); err != nil {
				t.Fatalf("decoded compact form rejected: %v", err)
			}
		})
	}
}

func TestAggregateTamperDetected(t *testing.T) {
	kr, err := crypto.NewKeyRing(7, 1, crypto.SchemeSimAgg)
	if err != nil {
		t.Fatal(err)
	}
	_, compact := buildAggQC(t, kr, 5)

	sig := compact.Agg.Sig
	compact.Agg.Sig[31] ^= 1
	err = crypto.VerifyQC(kr, compact, 5)
	if err == nil || !strings.Contains(err.Error(), "aggregator at fault") {
		t.Fatalf("tampered aggregate sig: got %v, want aggregator-at-fault error", err)
	}
	compact.Agg.Sig = sig

	// A lied marker changes the aggregation payload, so the recomputed sum
	// diverges even though the signer set is intact.
	compact.Votes[1].Marker = 0
	if err := crypto.VerifyQC(kr, compact, 5); err == nil {
		t.Fatal("marker mutation passed aggregate verification")
	}
	compact.Votes[1].Marker = 2
	if err := crypto.VerifyQC(kr, compact, 5); err != nil {
		t.Fatalf("restored certificate rejected: %v", err)
	}
}

func TestAggregateWrongSignerSet(t *testing.T) {
	kr, err := crypto.NewKeyRing(7, 1, crypto.SchemeSimAgg)
	if err != nil {
		t.Fatal(err)
	}
	_, compact := buildAggQC(t, kr, 5)

	// Swap voter 0 for voter 5 in the bitmap (popcount preserved) and
	// re-decode so Votes rematerialize from the tampered bitmap: structure is
	// consistent, but the key sum is not the one the aggregate signs.
	compact.Agg.Signers[0] = compact.Agg.Signers[0]&^1 | 1<<5
	dec, _, err := types.DecodeQC(compact.Encode(nil))
	if err != nil {
		t.Fatalf("tampered-bitmap decode: %v", err)
	}
	if err := crypto.VerifyQC(kr, dec, 5); err == nil {
		t.Fatal("wrong signer set passed aggregate verification")
	}
}

func TestAggregateRequiresAggregatingRing(t *testing.T) {
	base, err := crypto.NewKeyRing(7, 1, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	if crypto.Aggregates(base) {
		t.Fatal("base ring claims to aggregate")
	}
	agg, err := crypto.NewKeyRing(7, 1, crypto.SchemeSimAgg)
	if err != nil {
		t.Fatal(err)
	}
	_, compact := buildAggQC(t, agg, 5)

	if err := crypto.AggregateQC(base, compact); err == nil {
		t.Fatal("AggregateQC accepted a non-aggregating ring")
	}
	if err := crypto.VerifyQC(base, compact, 5); err == nil {
		t.Fatal("compact certificate verified against a non-aggregating ring")
	}
}

func TestAggregateVoterOutsideRing(t *testing.T) {
	kr, err := crypto.NewKeyRing(4, 1, crypto.SchemeSimAgg)
	if err != nil {
		t.Fatal(err)
	}
	var id types.BlockID
	qc := &types.QC{Block: id, Round: 1, Height: 1, Votes: []types.Vote{
		{Block: id, Round: 1, Height: 1, Voter: 0},
		{Block: id, Round: 1, Height: 1, Voter: 9},
	}}
	if err := crypto.AggregateQC(kr, qc); err == nil {
		t.Fatal("voter outside the ring aggregated")
	}
}

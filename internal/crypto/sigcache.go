package crypto

import (
	"crypto/sha256"

	"repro/internal/types"
)

// SigCache memoizes successful single-signature verifications by content
// digest. Streamlet's echo mechanism delivers the same vote or proposal to a
// replica up to n times (once directly, once per relayer); the state stage
// dedups those copies before its signature check, but the prevalidation
// stage is stateless and would otherwise pay a full ed25519 verification per
// copy. Signatures are immutable, so a (signer, payload, signature) triple
// that verified once verifies forever — the memo needs no invalidation, only
// an LRU bound.
//
// The key is a SHA-256 over signer, payload, and signature bytes, so a
// corrupted or re-attributed copy of a cached message never aliases the
// valid one: it misses, verifies in full, and fails. Like QCCache, a
// SigCache is internally synchronized (via the shared lruSet) for use from
// concurrent prevalidation workers; nothing is cached on failure.
type SigCache struct {
	set *lruSet[[32]byte]
}

// DefaultSigCacheSize covers the in-flight rounds of a paper-scale cluster:
// one vote and one proposal per replica per round, a few rounds deep.
const DefaultSigCacheSize = 4096

// NewSigCache creates a cache holding at most capacity verified signatures.
// capacity <= 0 selects DefaultSigCacheSize.
func NewSigCache(capacity int) *SigCache {
	if capacity <= 0 {
		capacity = DefaultSigCacheSize
	}
	return &SigCache{set: newLRUSet[[32]byte](capacity)}
}

// Verify behaves like v.Verify but consults the memo first and records
// successes. One digest pass replaces re-verification of byte-identical
// deliveries; results are identical to calling v.Verify directly.
func (c *SigCache) Verify(v Verifier, id types.ReplicaID, payload, sig []byte) bool {
	key := sigKey(id, payload, sig)
	if c.set.contains(key) {
		return true
	}
	if !v.Verify(id, payload, sig) {
		return false
	}
	c.set.add(key)
	return true
}

// Len returns the number of cached signatures.
func (c *SigCache) Len() int { return c.set.len() }

// sigKey digests the triple with length framing so (payload, sig) boundary
// ambiguity cannot alias two different triples.
func sigKey(id types.ReplicaID, payload, sig []byte) [32]byte {
	h := sha256.New()
	var hdr [12]byte
	hdr[0] = byte(id)
	hdr[1] = byte(id >> 8)
	hdr[2] = byte(id >> 16)
	hdr[3] = byte(id >> 24)
	n := uint64(len(payload))
	for i := 0; i < 8; i++ {
		hdr[4+i] = byte(n >> (8 * i))
	}
	h.Write(hdr[:])
	h.Write(payload)
	h.Write(sig)
	var key [32]byte
	h.Sum(key[:0])
	return key
}

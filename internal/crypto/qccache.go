package crypto

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// QCCache memoizes successful QC verifications for one replica. The paper's
// protocols deliver the same certificate to a replica many times (inside
// proposals, timeouts, and sync responses), and without a cache every
// delivery re-verifies all 2f+1 signatures — O(n²) signature checks per
// round across the cluster. Signatures are immutable, so a certificate that
// verified once verifies forever: the cache needs no invalidation, only an
// LRU bound on memory.
//
// Entries are keyed by the certified block ID plus a SHA-256 digest of the
// QC's full deterministic encoding (vote payloads and signatures), so two
// distinct certificates for the same block — different voter sets, markers,
// or forged signatures — never alias. The quorum parameter is part of the
// key as well, since structural validity depends on it.
//
// A QCCache belongs to one replica engine. Since the verification pipeline
// consults it from prevalidation workers concurrently with the engine loop,
// the key set is the shared internally-synchronized lruSet; the signature
// verification itself (the expensive part) runs outside its lock, so two
// workers may at worst verify the same novel certificate twice — a benign
// duplication, since insertion is idempotent.
type QCCache struct {
	set          *lruSet[qcKey]
	hits, misses atomic.Int64
}

// encodeScratch recycles QC-encoding buffers for key computation, which runs
// before the cache lock is taken so concurrent prevalidation workers never
// serialize on each other's hashing.
var encodeScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

type qcKey struct {
	block  types.BlockID
	digest [32]byte
	quorum int
}

// DefaultQCCacheSize bounds the cache when no explicit capacity is given.
// Certificates stop being re-delivered once their round is left behind, so a
// few hundred entries cover every in-flight round at paper scale (n=100).
const DefaultQCCacheSize = 512

// NewQCCache creates a cache holding at most capacity verified certificates.
// capacity <= 0 selects DefaultQCCacheSize.
func NewQCCache(capacity int) *QCCache {
	if capacity <= 0 {
		capacity = DefaultQCCacheSize
	}
	return &QCCache{set: newLRUSet[qcKey](capacity)}
}

// VerifyQC behaves exactly like the package-level VerifyQC but consults the
// cache first. Genesis certificates (no votes) are validated structurally
// and never cached; failed verifications are not cached either, so a replica
// re-examines a bad certificate if it is delivered again.
func (c *QCCache) VerifyQC(v Verifier, qc *types.QC, quorum int) error {
	return c.verify(v, qc, quorum, 0, false)
}

// VerifyQCBatch is VerifyQC with the batch verification path: a miss checks
// all vote signatures via BatchVerifyQC (one aggregate pass with up to
// workers-way concurrency, bisection attribution on failure) instead of one
// serial call per vote. Hits and the memo itself are identical.
func (c *QCCache) VerifyQCBatch(v Verifier, qc *types.QC, quorum, workers int) error {
	return c.verify(v, qc, quorum, workers, true)
}

func (c *QCCache) verify(v Verifier, qc *types.QC, quorum, workers int, batch bool) error {
	if len(qc.Votes) == 0 {
		return qc.CheckStructure(quorum)
	}
	// Key computation (encode + digest) happens outside the lock: the mutex
	// guards only the map and LRU list.
	bufp := encodeScratch.Get().(*[]byte)
	buf := qc.Encode((*bufp)[:0])
	key := qcKey{block: qc.Block, digest: sha256.Sum256(buf), quorum: quorum}
	*bufp = buf
	encodeScratch.Put(bufp)

	if c.set.contains(key) {
		c.hits.Add(1)
		return nil
	}

	// Signature work runs outside the lock so concurrent prevalidation
	// workers never serialize on each other's crypto.
	var err error
	if batch {
		err = BatchVerifyQC(v, qc, quorum, workers)
	} else {
		err = VerifyQC(v, qc, quorum)
	}
	if err != nil {
		return err
	}

	// Counted as a miss even when a concurrent worker raced us to the
	// insert — this pass did the verification work either way.
	c.misses.Add(1)
	c.set.add(key)
	return nil
}

// Len returns the number of cached certificates.
func (c *QCCache) Len() int { return c.set.len() }

// Stats returns cache hit/miss counters for diagnostics and benchmarks.
func (c *QCCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

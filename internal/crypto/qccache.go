package crypto

import (
	"container/list"
	"crypto/sha256"

	"repro/internal/types"
)

// QCCache memoizes successful QC verifications for one replica. The paper's
// protocols deliver the same certificate to a replica many times (inside
// proposals, timeouts, and sync responses), and without a cache every
// delivery re-verifies all 2f+1 signatures — O(n²) signature checks per
// round across the cluster. Signatures are immutable, so a certificate that
// verified once verifies forever: the cache needs no invalidation, only an
// LRU bound on memory.
//
// Entries are keyed by the certified block ID plus a SHA-256 digest of the
// QC's full deterministic encoding (vote payloads and signatures), so two
// distinct certificates for the same block — different voter sets, markers,
// or forged signatures — never alias. The quorum parameter is part of the
// key as well, since structural validity depends on it.
//
// A QCCache belongs to one replica engine and, like the engines themselves,
// is not safe for concurrent use.
type QCCache struct {
	capacity int
	entries  map[qcKey]*list.Element
	order    *list.List // front = most recently used; values are qcKey
	scratch  []byte     // reused encoding buffer for digest computation

	hits, misses int64
}

type qcKey struct {
	block  types.BlockID
	digest [32]byte
	quorum int
}

// DefaultQCCacheSize bounds the cache when no explicit capacity is given.
// Certificates stop being re-delivered once their round is left behind, so a
// few hundred entries cover every in-flight round at paper scale (n=100).
const DefaultQCCacheSize = 512

// NewQCCache creates a cache holding at most capacity verified certificates.
// capacity <= 0 selects DefaultQCCacheSize.
func NewQCCache(capacity int) *QCCache {
	if capacity <= 0 {
		capacity = DefaultQCCacheSize
	}
	return &QCCache{
		capacity: capacity,
		entries:  make(map[qcKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// VerifyQC behaves exactly like the package-level VerifyQC but consults the
// cache first. Genesis certificates (no votes) are validated structurally
// and never cached; failed verifications are not cached either, so a replica
// re-examines a bad certificate if it is delivered again.
func (c *QCCache) VerifyQC(v Verifier, qc *types.QC, quorum int) error {
	if len(qc.Votes) == 0 {
		return qc.CheckStructure(quorum)
	}
	c.scratch = qc.Encode(c.scratch[:0])
	key := qcKey{block: qc.Block, digest: sha256.Sum256(c.scratch), quorum: quorum}
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return nil
	}
	if err := VerifyQC(v, qc, quorum); err != nil {
		return err
	}
	c.misses++
	c.entries[key] = c.order.PushFront(key)
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(qcKey))
	}
	return nil
}

// Len returns the number of cached certificates.
func (c *QCCache) Len() int { return c.order.Len() }

// Stats returns cache hit/miss counters for diagnostics and benchmarks.
func (c *QCCache) Stats() (hits, misses int64) { return c.hits, c.misses }

package crypto_test

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/types"
)

func TestSignVerifyBothSchemes(t *testing.T) {
	for _, scheme := range []string{crypto.SchemeSim, crypto.SchemeEd25519} {
		t.Run(scheme, func(t *testing.T) {
			ring, err := crypto.NewKeyRing(4, 1, scheme)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("the quick brown fox")
			for id := types.ReplicaID(0); id < 4; id++ {
				sig := ring.Signer(id).Sign(msg)
				if !ring.Verify(id, msg, sig) {
					t.Fatalf("replica %v: genuine signature rejected", id)
				}
				// Wrong signer.
				other := (id + 1) % 4
				if ring.Verify(other, msg, sig) {
					t.Fatalf("signature by %v accepted for %v", id, other)
				}
				// Tampered message.
				if ring.Verify(id, append([]byte("x"), msg...), sig) {
					t.Fatal("tampered message accepted")
				}
				// Tampered signature.
				bad := append([]byte(nil), sig...)
				bad[0] ^= 1
				if ring.Verify(id, msg, bad) {
					t.Fatal("tampered signature accepted")
				}
			}
			// Out-of-range replica.
			if ring.Verify(99, msg, ring.Signer(0).Sign(msg)) {
				t.Fatal("out-of-range replica verified")
			}
		})
	}
}

func TestKeyRingDeterminism(t *testing.T) {
	a, _ := crypto.NewKeyRing(4, 7, crypto.SchemeEd25519)
	b, _ := crypto.NewKeyRing(4, 7, crypto.SchemeEd25519)
	c, _ := crypto.NewKeyRing(4, 8, crypto.SchemeEd25519)
	msg := []byte("m")
	if string(a.Signer(2).Sign(msg)) != string(b.Signer(2).Sign(msg)) {
		t.Error("same seed produced different keys")
	}
	if string(a.Signer(2).Sign(msg)) == string(c.Signer(2).Sign(msg)) {
		t.Error("different seeds produced identical keys")
	}
}

func TestNewKeyRingValidation(t *testing.T) {
	if _, err := crypto.NewKeyRing(0, 1, crypto.SchemeSim); err == nil {
		t.Error("accepted zero-size ring")
	}
	if _, err := crypto.NewKeyRing(4, 1, "rot13"); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestVerifyQC(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 3, crypto.SchemeSim)
	id := types.BlockID{1}
	mkVote := func(voter types.ReplicaID) types.Vote {
		v := types.Vote{Block: id, Round: 2, Height: 1, Voter: voter, Marker: 0}
		v.Signature = ring.Signer(voter).Sign(v.SigningPayload())
		return v
	}
	qc := &types.QC{Block: id, Round: 2, Height: 1, Votes: []types.Vote{mkVote(0), mkVote(1), mkVote(2)}}
	if err := crypto.VerifyQC(ring, qc, 3); err != nil {
		t.Fatalf("genuine QC rejected: %v", err)
	}
	// Below quorum.
	small := &types.QC{Block: id, Round: 2, Votes: qc.Votes[:2]}
	if err := crypto.VerifyQC(ring, small, 3); err == nil {
		t.Error("sub-quorum QC accepted")
	}
	// Forged signature.
	forged := *qc
	forged.Votes = append([]types.Vote(nil), qc.Votes...)
	forged.Votes[1].Marker = 7 // changes payload; signature now invalid
	if err := crypto.VerifyQC(ring, &forged, 3); err == nil {
		t.Error("QC with tampered vote accepted")
	}
	// VerifyVote direct.
	if err := crypto.VerifyVote(ring, qc.Votes[0]); err != nil {
		t.Errorf("genuine vote rejected: %v", err)
	}
	if err := crypto.VerifyVote(ring, forged.Votes[1]); err == nil {
		t.Error("tampered vote accepted")
	}
}

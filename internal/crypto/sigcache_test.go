package crypto_test

import (
	"testing"

	"repro/internal/crypto"
)

// TestSigCacheNoAliasing pins the memo's safety property: a byte-identical
// re-delivery is served from the cache, while any corrupted or re-attributed
// variant of a cached triple misses, verifies in full, and fails.
func TestSigCacheNoAliasing(t *testing.T) {
	kr, err := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	c := crypto.NewSigCache(8)
	payload := []byte("streamlet vote payload")
	sig := kr.Signer(2).Sign(payload)

	for i := 0; i < 3; i++ {
		if !c.Verify(kr, 2, payload, sig) {
			t.Fatalf("delivery %d of a valid triple rejected", i)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after 3 identical deliveries, want 1", c.Len())
	}

	// Flipped signature bit: must not alias the cached entry.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 1
	if c.Verify(kr, 2, payload, bad) {
		t.Fatal("corrupted signature passed via the cache")
	}
	// Re-attributed to another signer: must not alias either.
	if c.Verify(kr, 3, payload, sig) {
		t.Fatal("re-attributed signature passed via the cache")
	}
	// Payload/signature boundary shift with identical concatenation.
	if c.Verify(kr, 2, payload[:len(payload)-1], append([]byte{payload[len(payload)-1]}, sig...)) {
		t.Fatal("boundary-shifted triple passed via the cache")
	}
	// The original still verifies and failures were not cached.
	if !c.Verify(kr, 2, payload, sig) || c.Len() != 1 {
		t.Fatalf("cache corrupted by failed attempts: len=%d", c.Len())
	}
}

func TestSigCacheLRUEviction(t *testing.T) {
	kr, err := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	c := crypto.NewSigCache(2)
	payloads := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	for _, p := range payloads {
		if !c.Verify(kr, 1, p, kr.Signer(1).Sign(p)) {
			t.Fatal("valid triple rejected")
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", c.Len())
	}
}

package crypto_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/crypto"
	"repro/internal/types"
)

// batchCase builds a batch of signed payloads with a chosen set of
// corrupted indices and returns the verifier plus the per-item (signer,
// payload, signature) triples for the serial differential check.
type batchCase struct {
	signers  []types.ReplicaID
	payloads [][]byte
	sigs     [][]byte
}

func buildBatchCase(kr *crypto.KeyRing, rng *rand.Rand, size int, corrupt map[int]bool) *batchCase {
	c := &batchCase{}
	for i := 0; i < size; i++ {
		signer := types.ReplicaID(rng.Intn(kr.N()))
		payload := make([]byte, 1+rng.Intn(96))
		rng.Read(payload)
		sig := kr.Signer(signer).Sign(payload)
		if corrupt[i] {
			switch rng.Intn(3) {
			case 0: // flipped signature bit
				sig = append([]byte(nil), sig...)
				sig[rng.Intn(len(sig))] ^= 1 << uint(rng.Intn(8))
			case 1: // signature attributed to the wrong signer
				signer = types.ReplicaID((int(signer) + 1) % kr.N())
			default: // payload mutated after signing
				payload[rng.Intn(len(payload))] ^= 1
			}
		}
		c.signers = append(c.signers, signer)
		c.payloads = append(c.payloads, payload)
		c.sigs = append(c.sigs, sig)
	}
	return c
}

// serialBad is the ground truth: one KeyRing.Verify call per item.
func (c *batchCase) serialBad(kr *crypto.KeyRing) []int {
	var bad []int
	for i := range c.signers {
		if !kr.Verify(c.signers[i], c.payloads[i], c.sigs[i]) {
			bad = append(bad, i)
		}
	}
	return bad
}

func (c *batchCase) fill(bv *crypto.BatchVerifier) {
	for i := range c.signers {
		bv.Add(c.signers[i], c.payloads[i], c.sigs[i])
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchVerifierDifferential is the randomized differential test: over
// many random batches (valid and corrupted in random patterns), the batch
// verifier must agree with serial KeyRing.Verify item by item, and its
// bisection must pinpoint exactly the corrupted indices — at every worker
// count, for both signature schemes.
func TestBatchVerifierDifferential(t *testing.T) {
	for _, scheme := range []string{crypto.SchemeSim, crypto.SchemeEd25519} {
		t.Run("scheme="+scheme, func(t *testing.T) {
			kr, err := crypto.NewKeyRing(11, 42, scheme)
			if err != nil {
				t.Fatal(err)
			}
			trials := 64
			if scheme == crypto.SchemeEd25519 {
				trials = 12 // real crypto: fewer, still covering every corruption mode
			}
			rng := rand.New(rand.NewSource(99))
			bv := crypto.NewBatchVerifier(kr)
			for trial := 0; trial < trials; trial++ {
				size := 1 + rng.Intn(48)
				corrupt := map[int]bool{}
				// Roughly a third of trials fully valid; otherwise corrupt a
				// random subset, sometimes dense, sometimes a single item.
				if trial%3 != 0 {
					k := 1 + rng.Intn(1+size/2)
					for j := 0; j < k; j++ {
						corrupt[rng.Intn(size)] = true
					}
				}
				c := buildBatchCase(kr, rng, size, corrupt)
				want := c.serialBad(kr)
				for _, workers := range []int{1, 2, 3, 8} {
					bv.Reset(kr)
					c.fill(bv)
					ok := bv.Verify(workers)
					if ok != (len(want) == 0) {
						t.Fatalf("trial %d workers %d: Verify=%v, serial found %d bad", trial, workers, ok, len(want))
					}
					if !equalInts(bv.Bad(), want) {
						t.Fatalf("trial %d workers %d: Bad()=%v, serial ground truth %v", trial, workers, bv.Bad(), want)
					}
				}
			}
		})
	}
}

// FuzzBatchVerifier drives the differential property from fuzz input: the
// bytes choose batch size, corruption pattern, and worker count, and the
// oracle is serial verification. Run seeds in CI; `go test -fuzz` explores.
func FuzzBatchVerifier(f *testing.F) {
	f.Add(int64(1), uint16(5), uint32(0), uint8(1))
	f.Add(int64(2), uint16(17), uint32(0xffff), uint8(3))
	f.Add(int64(3), uint16(1), uint32(1), uint8(0))
	f.Add(int64(4), uint16(64), uint32(0x10101010), uint8(16))
	kr, err := crypto.NewKeyRing(7, 7, crypto.SchemeSim)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64, sizeRaw uint16, corruptMask uint32, workersRaw uint8) {
		size := 1 + int(sizeRaw)%64
		rng := rand.New(rand.NewSource(seed))
		corrupt := map[int]bool{}
		for i := 0; i < size && i < 32; i++ {
			if corruptMask&(1<<uint(i)) != 0 {
				corrupt[i] = true
			}
		}
		c := buildBatchCase(kr, rng, size, corrupt)
		want := c.serialBad(kr)
		bv := crypto.NewBatchVerifier(kr)
		c.fill(bv)
		ok := bv.Verify(int(workersRaw) % 9)
		if ok != (len(want) == 0) || !equalInts(bv.Bad(), want) {
			t.Fatalf("batch disagrees with serial: Verify=%v Bad=%v want %v", ok, bv.Bad(), want)
		}
	})
}

// TestBatchVerifyQCAttribution pins the acceptance property: a corrupted
// signature inside a batch-verified QC is attributed to the correct sender
// and rejected, while the untampered certificate passes at every worker
// count.
func TestBatchVerifyQCAttribution(t *testing.T) {
	for _, scheme := range []string{crypto.SchemeSim, crypto.SchemeEd25519} {
		t.Run("scheme="+scheme, func(t *testing.T) {
			kr, err := crypto.NewKeyRing(7, 1, scheme)
			if err != nil {
				t.Fatal(err)
			}
			var block types.BlockID
			block[0] = 3
			qc := &types.QC{Block: block, Round: 4, Height: 4}
			for i := 0; i < 5; i++ {
				v := types.Vote{Block: block, Round: 4, Height: 4, Voter: types.ReplicaID(i)}
				v.Signature = kr.Signer(v.Voter).Sign(v.SigningPayload())
				qc.Votes = append(qc.Votes, v)
			}
			for _, workers := range []int{1, 2, 8} {
				if err := crypto.BatchVerifyQC(kr, qc, 5, workers); err != nil {
					t.Fatalf("valid QC rejected at workers=%d: %v", workers, err)
				}
			}
			for _, corruptIdx := range []int{0, 2, 4} {
				bad := &types.QC{Block: qc.Block, Round: qc.Round, Height: qc.Height}
				bad.Votes = append([]types.Vote(nil), qc.Votes...)
				bad.Votes[corruptIdx].Signature = append([]byte(nil), qc.Votes[corruptIdx].Signature...)
				bad.Votes[corruptIdx].Signature[1] ^= 0x40
				for _, workers := range []int{1, 2, 8} {
					err := crypto.BatchVerifyQC(kr, bad, 5, workers)
					if err == nil {
						t.Fatalf("corrupted vote %d passed at workers=%d", corruptIdx, workers)
					}
					if want := bad.Votes[corruptIdx].String(); !strings.Contains(err.Error(), want) {
						t.Fatalf("corrupted vote %d not attributed: %v (want mention of %s)", corruptIdx, err, want)
					}
				}
			}
		})
	}
}

// TestBatchVerifierAddsNoAllocs guards the batch layer's overhead: once its
// arena has warmed up, accumulating and verifying a batch allocates nothing
// beyond what the underlying per-signature Verify itself allocates.
func TestBatchVerifierAddsNoAllocs(t *testing.T) {
	kr, err := crypto.NewKeyRing(7, 1, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	c := buildBatchCase(kr, rng, 16, nil)

	serial := testing.AllocsPerRun(200, func() {
		for i := range c.signers {
			if !kr.Verify(c.signers[i], c.payloads[i], c.sigs[i]) {
				t.Fatal("serial verify failed")
			}
		}
	})
	bv := crypto.NewBatchVerifier(kr)
	c.fill(bv)
	bv.Verify(1) // warm the arena and item slices
	batch := testing.AllocsPerRun(200, func() {
		bv.Reset(kr)
		c.fill(bv)
		if !bv.Verify(1) {
			t.Fatal("batch verify failed")
		}
	})
	if batch > serial {
		t.Fatalf("batch path allocates %.1f/run, serial baseline %.1f/run", batch, serial)
	}
}

// TestBatchSmallBatchStaysSerialAllocs guards the serial fast path: at or
// below the small-batch threshold (8 items), Verify must ignore the
// requested fan-out and stay on the calling goroutine — the shard
// bookkeeping and goroutine startup cost 6-10 allocations per call (see
// BENCH_PR3) with no verification win on a handful of items. Matching the
// serial baseline exactly means the fast path is actually taken: any
// goroutine fan-out would show up as extra allocations per run.
func TestBatchSmallBatchStaysSerialAllocs(t *testing.T) {
	kr, err := crypto.NewKeyRing(9, 1, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	small := buildBatchCase(kr, rng, 8, nil)

	serial := testing.AllocsPerRun(200, func() {
		for i := range small.signers {
			if !kr.Verify(small.signers[i], small.payloads[i], small.sigs[i]) {
				t.Fatal("serial verify failed")
			}
		}
	})
	bv := crypto.NewBatchVerifier(kr)
	small.fill(bv)
	bv.Verify(8) // warm the arena and item slices
	batch := testing.AllocsPerRun(200, func() {
		bv.Reset(kr)
		small.fill(bv)
		if !bv.Verify(8) { // fan-out requested, serial path required
			t.Fatal("batch verify failed")
		}
	})
	if batch > serial {
		t.Fatalf("small batch with workers=8 allocates %.1f/run, serial baseline %.1f/run — serial fast path not taken", batch, serial)
	}
}

// BenchmarkVerifyQCBatch compares a cold certificate verification on the
// serial path against the batch path at several worker counts, for both
// schemes. On a multi-core host the batch path scales with workers; on a
// single-core host it must stay within noise of serial (the batch layer's
// own overhead is the only difference).
func BenchmarkVerifyQCBatch(b *testing.B) {
	for _, scheme := range []string{crypto.SchemeSim, crypto.SchemeEd25519} {
		kr, err := crypto.NewKeyRing(31, 1, scheme)
		if err != nil {
			b.Fatal(err)
		}
		var block types.BlockID
		block[0] = 7
		qc := &types.QC{Block: block, Round: 5, Height: 5}
		for i := 0; i < 21; i++ {
			v := types.Vote{Block: block, Round: 5, Height: 5, Voter: types.ReplicaID(i)}
			v.Signature = kr.Signer(v.Voter).Sign(v.SigningPayload())
			qc.Votes = append(qc.Votes, v)
		}
		b.Run("scheme="+scheme+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := crypto.VerifyQC(kr, qc, 21); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("scheme=%s/batch/workers=%d", scheme, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := crypto.BatchVerifyQC(kr, qc, 21, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

package pacemaker

import "repro/internal/types"

// ChainInfo is one certified ancestor the reputation rule scores: the block's
// round and who proposed it. Callers pass the justify ancestry in strictly
// descending round order (tip first).
type ChainInfo struct {
	Round    types.Round
	Proposer types.ReplicaID
}

// ReputationLeader elects the leader of round r with leader-reputation
// rotation: replicas whose most recent round-robin slot inside the window
// timed out — visible as round gaps in the certified chain — are skipped
// until they next produce a certified block, so a crashed or slow leader
// stops stalling one round per rotation.
//
// Determinism: the function is pure in (r, n, window, chain), and the chain
// is the justify ancestry of the proposal under consideration — data the
// proposer ships inside the proposal itself — so proposer and validators
// always score from identical inputs, and recovery is free (the ancestry is
// WAL-journaled with the blocks). Failed rounds are attributed to their
// round-robin leader; certified blocks are credited to their actual
// proposer. If every candidate is excluded the plain round-robin leader is
// returned, so reputation can delay no one forever (liveness falls back to
// Theorem 2's rotation argument).
func ReputationLeader(r types.Round, n int, window types.Round, chain []ChainInfo) types.ReplicaID {
	if window <= 0 || len(chain) == 0 {
		return Leader(r, n)
	}
	lo := types.Round(1)
	if r > window {
		lo = r - window
	}
	lastFailed := make(map[types.ReplicaID]types.Round, n)
	lastSuccess := make(map[types.ReplicaID]types.Round, n)
	prev := r
	for _, c := range chain {
		if c.Round >= prev {
			// Defensive: ignore out-of-order entries instead of mis-scoring.
			continue
		}
		for fr := max(c.Round+1, lo); fr < prev; fr++ {
			id := Leader(fr, n)
			if fr > lastFailed[id] {
				lastFailed[id] = fr
			}
		}
		if c.Round < lo {
			break
		}
		if c.Round > lastSuccess[c.Proposer] {
			lastSuccess[c.Proposer] = c.Round
		}
		prev = c.Round
	}
	for k := types.Round(0); k < types.Round(n); k++ {
		id := Leader(r+k, n)
		failed, bad := lastFailed[id]
		if !bad || lastSuccess[id] > failed {
			return id
		}
	}
	return Leader(r, n)
}

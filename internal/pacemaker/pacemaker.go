// Package pacemaker implements round synchronization for the DiemBFT
// engine: round-robin leader election, per-round timeout tracking, and
// timeout-certificate (2f+1 timeout messages) aggregation, per the
// synchronization rule of Figure 2.
//
// Two hardening layers sit on top of the passive baseline. A per-peer cap
// bounds how many timeout messages any single sender can keep buffered, so
// timeout-spam cannot grow the collection maps without bound (the cap holds
// in both passive and active modes). Active mode (SetActive) additionally
// enforces a bounded future window — timeouts and round entries beyond
// Round()+window are rejected outright — and forms verifiable timeout
// certificates (types.TC) whose attestations justify round entry the way
// Jolteon-style production pacemakers do.
package pacemaker

import (
	"time"

	"repro/internal/types"
)

// Leader returns the round-robin leader of round r for an n-replica system.
// Rounds start at 1 and replica 0 leads round 1, so within any window of n
// consecutive rounds every replica leads exactly once (the rotation Theorem
// 2's liveness argument relies on).
func Leader(r types.Round, n int) types.ReplicaID {
	if r == 0 {
		return 0
	}
	return types.ReplicaID(uint64(r-1) % uint64(n))
}

// DefaultPerPeerCap bounds how many timeout messages one peer may keep
// buffered across all rounds. Honest replicas have at most a couple of
// in-flight timeouts (their current round, plus briefly the previous one
// during an advance), so a small cap never touches them while turning a
// spammer's unbounded map growth into a constant.
const DefaultPerPeerCap = 8

// DefaultWindow is the active-mode future window: timeouts and round entries
// more than this many rounds ahead of the local round are rejected. Honest
// peers are never this far ahead of a connected replica — a replica that
// genuinely lags recovers through certified chain segments (proposals, state
// sync), not through naked future timeouts.
const DefaultWindow types.Round = 8

// Stats is a snapshot of the pacemaker's timeout-buffer accounting, the
// evidence the harness A/B uses to show bounded memory under spam.
type Stats struct {
	// Buffered is the number of timeout messages currently held.
	Buffered int
	// PeakPerPeer is the high-watermark of any single peer's buffered count.
	PeakPerPeer int
	// Dropped counts timeouts rejected by the per-peer cap.
	Dropped uint64
}

// Pacemaker tracks the current round, which rounds this replica has timed
// out of, and timeout messages collected from peers.
type Pacemaker struct {
	n, f        int
	round       types.Round
	timedOut    map[types.Round]bool
	timeouts    map[types.Round]map[types.ReplicaID]*types.Timeout
	baseTimeout time.Duration
	// backoff multiplies the timeout for consecutive failed rounds so the
	// system recovers after long partitions; 1.0 disables it.
	backoff     float64
	failedRuns  int
	maxTimeout  time.Duration
	roundStart  time.Duration
	lastAdvance time.Duration

	// perPeer counts buffered timeouts per sender; cap bounds it.
	perPeer     map[types.ReplicaID]int
	cap         int
	peakPerPeer int
	dropped     uint64

	// active mode: bounded future window for timeouts and round entries.
	active bool
	window types.Round
}

// New creates a pacemaker starting at round 1.
func New(n, f int, baseTimeout time.Duration) *Pacemaker {
	return &Pacemaker{
		n:           n,
		f:           f,
		round:       1,
		timedOut:    make(map[types.Round]bool),
		timeouts:    make(map[types.Round]map[types.ReplicaID]*types.Timeout),
		baseTimeout: baseTimeout,
		// Fixed timeouts by default: the simulator's links are reliable, so
		// a TC always forms within one timeout, and fixed rounds match the
		// paper's observation that persistently slow leaders stay timed out
		// (the Figure 7b "outcast replicas" at δ=200ms). SetBackoff enables
		// exponential backoff for partial-synchrony scenarios.
		backoff:    1.0,
		maxTimeout: baseTimeout * 32,
		perPeer:    make(map[types.ReplicaID]int),
		cap:        DefaultPerPeerCap,
	}
}

// SetBackoff sets the timeout multiplier applied per consecutive
// timeout-driven round (1.0 = fixed timeouts).
func (p *Pacemaker) SetBackoff(m float64) {
	if m >= 1 {
		p.backoff = m
	}
}

// SetPerPeerCap overrides the per-peer buffered-timeout cap (values < 1 keep
// the default).
func (p *Pacemaker) SetPerPeerCap(cap int) {
	if cap >= 1 {
		p.cap = cap
	}
}

// SetActive switches the pacemaker to active mode with the given future
// window (0 selects DefaultWindow): round entries are announced and
// validated, and timeouts beyond Round()+window are rejected.
func (p *Pacemaker) SetActive(window types.Round) {
	p.active = true
	if window <= 0 {
		window = DefaultWindow
	}
	p.window = window
}

// Active reports whether active mode is on.
func (p *Pacemaker) Active() bool { return p.active }

// Window returns the active-mode future window (0 when passive).
func (p *Pacemaker) Window() types.Round { return p.window }

// WithinWindow reports whether round r is acceptable under the active-mode
// future window. Passive pacemakers accept everything.
func (p *Pacemaker) WithinWindow(r types.Round) bool {
	return !p.active || r <= p.round+p.window
}

// Round returns the current round.
func (p *Pacemaker) Round() types.Round { return p.round }

// Leader returns the leader of round r.
func (p *Pacemaker) Leader(r types.Round) types.ReplicaID { return Leader(r, p.n) }

// Quorum returns the 2f+1 quorum size.
func (p *Pacemaker) Quorum() int { return 2*p.f + 1 }

// AdvanceTo moves to round r if it is ahead of the current round, returning
// true on an actual advance. now is used to stamp the round start.
func (p *Pacemaker) AdvanceTo(r types.Round, now time.Duration, viaTimeout bool) bool {
	if r <= p.round {
		return false
	}
	p.round = r
	p.roundStart = now
	p.lastAdvance = now
	if viaTimeout {
		p.failedRuns++
	} else {
		p.failedRuns = 0
	}
	// Garbage-collect stale timeout state.
	for rr, m := range p.timeouts {
		if rr+2 < r {
			for sender := range m {
				p.releasePeer(sender)
			}
			delete(p.timeouts, rr)
		}
	}
	for rr := range p.timedOut {
		if rr+2 < r {
			delete(p.timedOut, rr)
		}
	}
	return true
}

// Timeout returns the timer duration for the current round, applying
// exponential backoff after consecutive timeout-driven advances.
func (p *Pacemaker) Timeout() time.Duration {
	d := p.baseTimeout
	for i := 0; i < p.failedRuns; i++ {
		d = time.Duration(float64(d) * p.backoff)
		if d >= p.maxTimeout {
			return p.maxTimeout
		}
	}
	return d
}

// MarkTimedOut records that this replica stopped voting in round r.
func (p *Pacemaker) MarkTimedOut(r types.Round) { p.timedOut[r] = true }

// TimedOut reports whether this replica timed out of round r.
func (p *Pacemaker) TimedOut(r types.Round) bool { return p.timedOut[r] }

// TimeoutOutcome reports what OnTimeout did with a message.
type TimeoutOutcome int

// OnTimeout outcomes.
const (
	// TimeoutBuffered: recorded, quorum not yet reached.
	TimeoutBuffered TimeoutOutcome = iota
	// TimeoutQuorum: this message completed the 2f+1 certificate.
	TimeoutQuorum
	// TimeoutDuplicate: the sender already has a timeout for this round.
	TimeoutDuplicate
	// TimeoutDroppedCap: rejected — the sender is at its per-peer cap and
	// holds nothing of lower urgency to evict.
	TimeoutDroppedCap
)

// OnTimeout records a peer timeout message, enforcing the per-peer cap. A
// sender at its cap either evicts its own highest-round buffered timeout (if
// the new one is for a lower — more urgent — round) or has the new message
// dropped, so one peer can never hold more than cap entries regardless of
// how many distinct future rounds it claims to have timed out of.
func (p *Pacemaker) OnTimeout(t *types.Timeout) TimeoutOutcome {
	m, ok := p.timeouts[t.Round]
	if !ok {
		m = make(map[types.ReplicaID]*types.Timeout, p.Quorum())
		p.timeouts[t.Round] = m
	}
	if _, dup := m[t.Sender]; dup {
		return TimeoutDuplicate
	}
	if p.perPeer[t.Sender] >= p.cap && !p.evictAbove(t.Sender, t.Round) {
		p.dropped++
		if len(m) == 0 {
			delete(p.timeouts, t.Round)
		}
		return TimeoutDroppedCap
	}
	m[t.Sender] = t
	p.perPeer[t.Sender]++
	if p.perPeer[t.Sender] > p.peakPerPeer {
		p.peakPerPeer = p.perPeer[t.Sender]
	}
	if len(m) == p.Quorum() {
		return TimeoutQuorum
	}
	return TimeoutBuffered
}

// evictAbove removes sender's buffered timeout with the highest round
// strictly above r, reporting whether anything was evicted. Lower rounds are
// the urgent ones (closest to completing a certificate the replica can act
// on), so the far-future claims are the ones a capped peer loses first.
func (p *Pacemaker) evictAbove(sender types.ReplicaID, r types.Round) bool {
	var victim types.Round
	found := false
	for rr, m := range p.timeouts {
		if rr <= r {
			continue
		}
		if _, ok := m[sender]; ok && (!found || rr > victim) {
			victim, found = rr, true
		}
	}
	if !found {
		return false
	}
	m := p.timeouts[victim]
	delete(m, sender)
	if len(m) == 0 {
		delete(p.timeouts, victim)
	}
	p.releasePeer(sender)
	p.dropped++
	return true
}

// releasePeer decrements a sender's buffered count.
func (p *Pacemaker) releasePeer(sender types.ReplicaID) {
	if c := p.perPeer[sender]; c > 1 {
		p.perPeer[sender] = c - 1
	} else {
		delete(p.perPeer, sender)
	}
}

// TimeoutCount returns how many distinct timeout messages are held for r.
func (p *Pacemaker) TimeoutCount(r types.Round) int { return len(p.timeouts[r]) }

// TCFor assembles the timeout certificate for round r from the buffered
// timeouts, or nil if fewer than 2f+1 distinct senders are held. The
// attestations carry each sender's signed (round, high-QC-round) claim, so
// the certificate verifies standalone (crypto.VerifyTC).
func (p *Pacemaker) TCFor(r types.Round) *types.TC {
	m := p.timeouts[r]
	if len(m) < p.Quorum() {
		return nil
	}
	ts := make([]*types.Timeout, 0, len(m))
	for _, t := range m {
		ts = append(ts, t)
	}
	return types.NewTC(r, ts)
}

// Stats returns the timeout-buffer accounting snapshot.
func (p *Pacemaker) Stats() Stats {
	buffered := 0
	for _, m := range p.timeouts {
		buffered += len(m)
	}
	return Stats{Buffered: buffered, PeakPerPeer: p.peakPerPeer, Dropped: p.dropped}
}

// Package pacemaker implements round synchronization for the DiemBFT
// engine: round-robin leader election, per-round timeout tracking, and
// timeout-certificate (2f+1 timeout messages) aggregation, per the
// synchronization rule of Figure 2.
package pacemaker

import (
	"time"

	"repro/internal/types"
)

// Leader returns the round-robin leader of round r for an n-replica system.
// Rounds start at 1 and replica 0 leads round 1, so within any window of n
// consecutive rounds every replica leads exactly once (the rotation Theorem
// 2's liveness argument relies on).
func Leader(r types.Round, n int) types.ReplicaID {
	if r == 0 {
		return 0
	}
	return types.ReplicaID(uint64(r-1) % uint64(n))
}

// Pacemaker tracks the current round, which rounds this replica has timed
// out of, and timeout messages collected from peers.
type Pacemaker struct {
	n, f        int
	round       types.Round
	timedOut    map[types.Round]bool
	timeouts    map[types.Round]map[types.ReplicaID]*types.Timeout
	baseTimeout time.Duration
	// backoff multiplies the timeout for consecutive failed rounds so the
	// system recovers after long partitions; 1.0 disables it.
	backoff     float64
	failedRuns  int
	maxTimeout  time.Duration
	roundStart  time.Duration
	lastAdvance time.Duration
}

// New creates a pacemaker starting at round 1.
func New(n, f int, baseTimeout time.Duration) *Pacemaker {
	return &Pacemaker{
		n:           n,
		f:           f,
		round:       1,
		timedOut:    make(map[types.Round]bool),
		timeouts:    make(map[types.Round]map[types.ReplicaID]*types.Timeout),
		baseTimeout: baseTimeout,
		// Fixed timeouts by default: the simulator's links are reliable, so
		// a TC always forms within one timeout, and fixed rounds match the
		// paper's observation that persistently slow leaders stay timed out
		// (the Figure 7b "outcast replicas" at δ=200ms). SetBackoff enables
		// exponential backoff for partial-synchrony scenarios.
		backoff:    1.0,
		maxTimeout: baseTimeout * 32,
	}
}

// SetBackoff sets the timeout multiplier applied per consecutive
// timeout-driven round (1.0 = fixed timeouts).
func (p *Pacemaker) SetBackoff(m float64) {
	if m >= 1 {
		p.backoff = m
	}
}

// Round returns the current round.
func (p *Pacemaker) Round() types.Round { return p.round }

// Leader returns the leader of round r.
func (p *Pacemaker) Leader(r types.Round) types.ReplicaID { return Leader(r, p.n) }

// Quorum returns the 2f+1 quorum size.
func (p *Pacemaker) Quorum() int { return 2*p.f + 1 }

// AdvanceTo moves to round r if it is ahead of the current round, returning
// true on an actual advance. now is used to stamp the round start.
func (p *Pacemaker) AdvanceTo(r types.Round, now time.Duration, viaTimeout bool) bool {
	if r <= p.round {
		return false
	}
	p.round = r
	p.roundStart = now
	p.lastAdvance = now
	if viaTimeout {
		p.failedRuns++
	} else {
		p.failedRuns = 0
	}
	// Garbage-collect stale timeout state.
	for rr := range p.timeouts {
		if rr+2 < r {
			delete(p.timeouts, rr)
		}
	}
	for rr := range p.timedOut {
		if rr+2 < r {
			delete(p.timedOut, rr)
		}
	}
	return true
}

// Timeout returns the timer duration for the current round, applying
// exponential backoff after consecutive timeout-driven advances.
func (p *Pacemaker) Timeout() time.Duration {
	d := p.baseTimeout
	for i := 0; i < p.failedRuns; i++ {
		d = time.Duration(float64(d) * p.backoff)
		if d >= p.maxTimeout {
			return p.maxTimeout
		}
	}
	return d
}

// MarkTimedOut records that this replica stopped voting in round r.
func (p *Pacemaker) MarkTimedOut(r types.Round) { p.timedOut[r] = true }

// TimedOut reports whether this replica timed out of round r.
func (p *Pacemaker) TimedOut(r types.Round) bool { return p.timedOut[r] }

// OnTimeout records a peer timeout message and reports whether a timeout
// certificate (2f+1 distinct senders for that round) just completed.
func (p *Pacemaker) OnTimeout(t *types.Timeout) bool {
	m, ok := p.timeouts[t.Round]
	if !ok {
		m = make(map[types.ReplicaID]*types.Timeout, p.Quorum())
		p.timeouts[t.Round] = m
	}
	if _, dup := m[t.Sender]; dup {
		return false
	}
	m[t.Sender] = t
	return len(m) == p.Quorum()
}

// TimeoutCount returns how many distinct timeout messages are held for r.
func (p *Pacemaker) TimeoutCount(r types.Round) int { return len(p.timeouts[r]) }

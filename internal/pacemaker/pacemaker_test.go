package pacemaker_test

import (
	"testing"
	"time"

	"repro/internal/pacemaker"
	"repro/internal/types"
)

func TestLeaderRoundRobin(t *testing.T) {
	const n = 7
	// Every window of n consecutive rounds elects every replica once.
	seen := make(map[types.ReplicaID]int)
	for r := types.Round(1); r <= n; r++ {
		seen[pacemaker.Leader(r, n)]++
	}
	if len(seen) != n {
		t.Fatalf("window covered %d of %d replicas", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("replica %v led %d times in one window", id, c)
		}
	}
	if pacemaker.Leader(1, n) != 0 {
		t.Error("replica 0 must lead round 1")
	}
	if pacemaker.Leader(n+1, n) != 0 {
		t.Error("rotation must wrap after n rounds")
	}
}

func TestAdvanceTo(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	if p.Round() != 1 {
		t.Fatalf("initial round = %d", p.Round())
	}
	if !p.AdvanceTo(3, 0, false) || p.Round() != 3 {
		t.Fatal("forward advance failed")
	}
	if p.AdvanceTo(2, 0, false) || p.Round() != 3 {
		t.Fatal("backward advance accepted")
	}
	if p.AdvanceTo(3, 0, false) {
		t.Fatal("same-round advance accepted")
	}
}

func mkTimeout(sender types.ReplicaID, r types.Round) *types.Timeout {
	return &types.Timeout{Round: r, Sender: sender}
}

func TestTimeoutCertificate(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	mk := mkTimeout
	if p.OnTimeout(mk(0, 5)) == pacemaker.TimeoutQuorum || p.OnTimeout(mk(1, 5)) == pacemaker.TimeoutQuorum {
		t.Fatal("TC before quorum")
	}
	// Duplicate sender does not advance the count.
	if p.OnTimeout(mk(1, 5)) != pacemaker.TimeoutDuplicate {
		t.Fatal("duplicate timeout not flagged")
	}
	if p.OnTimeout(mk(2, 5)) != pacemaker.TimeoutQuorum {
		t.Fatal("third distinct timeout should complete the 2f+1 TC")
	}
	// Completing again returns buffered (already formed).
	if p.OnTimeout(mk(3, 5)) == pacemaker.TimeoutQuorum {
		t.Fatal("TC completed twice")
	}
	if p.TimeoutCount(5) != 4 {
		t.Fatalf("timeout count = %d", p.TimeoutCount(5))
	}
	tc := p.TCFor(5)
	if tc == nil || tc.Round != 5 || len(tc.Attestations) != 4 {
		t.Fatalf("TCFor(5) = %v", tc)
	}
	if err := tc.CheckStructure(p.Quorum()); err != nil {
		t.Fatalf("formed TC fails structure check: %v", err)
	}
	if p.TCFor(6) != nil {
		t.Fatal("TCFor without quorum must be nil")
	}
}

// TestPerPeerCapBoundsSpam is the regression test for the unbounded
// timeout-buffer growth: a single peer spamming timeouts for ever-higher
// future rounds must never hold more than the per-peer cap, no matter how
// long the spam sustains, while the other peers' state stays untouched.
func TestPerPeerCapBoundsSpam(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	const spam = 10000
	for i := 0; i < spam; i++ {
		p.OnTimeout(mkTimeout(3, types.Round(100+i)))
	}
	st := p.Stats()
	if st.Buffered > pacemaker.DefaultPerPeerCap {
		t.Fatalf("buffered %d entries after sustained spam (cap %d)", st.Buffered, pacemaker.DefaultPerPeerCap)
	}
	if st.PeakPerPeer > pacemaker.DefaultPerPeerCap {
		t.Fatalf("peak per-peer %d exceeds cap %d", st.PeakPerPeer, pacemaker.DefaultPerPeerCap)
	}
	if st.Dropped == 0 {
		t.Fatal("cap never dropped anything under spam")
	}
	// A lower (more urgent) round from the capped peer evicts its own
	// highest-round claim rather than being lost.
	if p.OnTimeout(mkTimeout(3, 2)) != pacemaker.TimeoutBuffered {
		t.Fatal("urgent low-round timeout lost to the cap")
	}
	if p.TimeoutCount(2) != 1 {
		t.Fatal("urgent timeout not recorded")
	}
	// Other peers are unaffected and TCs still form.
	if p.OnTimeout(mkTimeout(0, 2)) != pacemaker.TimeoutBuffered {
		t.Fatal("honest peer caught by another peer's cap")
	}
	if p.OnTimeout(mkTimeout(1, 2)) != pacemaker.TimeoutQuorum {
		t.Fatal("TC failed to form at quorum")
	}
	// Advance GC releases per-peer budget.
	p.AdvanceTo(20000, 0, false)
	if st := p.Stats(); st.Buffered != 0 {
		t.Fatalf("GC left %d entries buffered", st.Buffered)
	}
	if p.OnTimeout(mkTimeout(3, 20001)) != pacemaker.TimeoutBuffered {
		t.Fatal("per-peer budget not released by GC")
	}
}

func TestActiveWindow(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	if !p.WithinWindow(1 << 30) {
		t.Fatal("passive pacemaker must accept any round")
	}
	p.SetActive(0)
	if !p.Active() || p.Window() != pacemaker.DefaultWindow {
		t.Fatalf("SetActive(0) => active=%v window=%d", p.Active(), p.Window())
	}
	if !p.WithinWindow(p.Round() + pacemaker.DefaultWindow) {
		t.Fatal("in-window round rejected")
	}
	if p.WithinWindow(p.Round() + pacemaker.DefaultWindow + 1) {
		t.Fatal("beyond-window round accepted")
	}
}

func TestReputationLeader(t *testing.T) {
	const n = 7
	// No chain or window: plain round robin.
	if got := pacemaker.ReputationLeader(10, n, 0, nil); got != pacemaker.Leader(10, n) {
		t.Fatalf("window 0 leader = %v", got)
	}
	// Contiguous chain (no failures): round robin.
	chain := []pacemaker.ChainInfo{{Round: 9, Proposer: pacemaker.Leader(9, n)}, {Round: 8, Proposer: pacemaker.Leader(8, n)}}
	if got := pacemaker.ReputationLeader(10, n, 14, chain); got != pacemaker.Leader(10, n) {
		t.Fatalf("healthy chain leader = %v, want %v", got, pacemaker.Leader(10, n))
	}
	// A gap covering round 10's round-robin leader skips it: chain jumps from
	// round 6 to round 9, so rounds 7 and 8 failed. Make round 10's default
	// leader the leader of a failed round by choosing r so that Leader(r)
	// equals Leader(7) — that is r = 14 (7 ≡ 14 mod 7).
	gappy := []pacemaker.ChainInfo{
		{Round: 13, Proposer: pacemaker.Leader(13, n)},
		{Round: 12, Proposer: pacemaker.Leader(12, n)},
		{Round: 6, Proposer: pacemaker.Leader(6, n)}, // rounds 7..11 failed
	}
	def := pacemaker.Leader(14, n)
	got := pacemaker.ReputationLeader(14, n, 14, gappy)
	if got == def {
		t.Fatalf("leader of failed round %v not skipped", def)
	}
	if got != pacemaker.Leader(12, n) && got != pacemaker.Leader(13, n) {
		// The replacement must be deterministic and drawn from the rotation.
		t.Logf("replacement leader %v", got)
	}
	// Determinism: same inputs, same answer.
	if again := pacemaker.ReputationLeader(14, n, 14, gappy); again != got {
		t.Fatalf("non-deterministic: %v then %v", got, again)
	}
	// A later certified block by the failed leader restores it.
	restored := append([]pacemaker.ChainInfo{{Round: 15, Proposer: def}}, gappy...)
	if got := pacemaker.ReputationLeader(16, n, 14, restored); got == def != (pacemaker.Leader(16, n) == def) {
		t.Fatalf("success did not restore reputation correctly: got %v", got)
	}
	// All-excluded fallback: every round in the window failed.
	empty := []pacemaker.ChainInfo{{Round: 1, Proposer: 0}}
	if got := pacemaker.ReputationLeader(30, n, 28, empty); got != pacemaker.Leader(30, n) {
		t.Fatalf("all-excluded fallback = %v, want round robin %v", got, pacemaker.Leader(30, n))
	}
}

func TestTimedOutTracking(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	p.MarkTimedOut(1)
	if !p.TimedOut(1) || p.TimedOut(2) {
		t.Fatal("timed-out tracking wrong")
	}
	// Old state is garbage collected on advance.
	p.AdvanceTo(10, 0, false)
	if p.TimedOut(1) {
		t.Fatal("stale timed-out state survived GC")
	}
}

func TestBackoff(t *testing.T) {
	p := pacemaker.New(4, 1, 100*time.Millisecond)
	// Default: fixed timeouts.
	p.AdvanceTo(2, 0, true)
	p.AdvanceTo(3, 0, true)
	if p.Timeout() != 100*time.Millisecond {
		t.Fatalf("default backoff changed timeout: %v", p.Timeout())
	}
	// With backoff enabled, consecutive timeout-advances grow the timer.
	p2 := pacemaker.New(4, 1, 100*time.Millisecond)
	p2.SetBackoff(2.0)
	p2.AdvanceTo(2, 0, true)
	p2.AdvanceTo(3, 0, true)
	if p2.Timeout() != 400*time.Millisecond {
		t.Fatalf("backoff timeout = %v, want 400ms", p2.Timeout())
	}
	// A QC-driven advance resets the streak.
	p2.AdvanceTo(4, 0, false)
	if p2.Timeout() != 100*time.Millisecond {
		t.Fatalf("reset timeout = %v, want 100ms", p2.Timeout())
	}
	// Backoff is capped.
	p3 := pacemaker.New(4, 1, 100*time.Millisecond)
	p3.SetBackoff(10)
	for r := types.Round(2); r < 20; r++ {
		p3.AdvanceTo(r, 0, true)
	}
	if p3.Timeout() > 32*100*time.Millisecond {
		t.Fatalf("backoff exceeded cap: %v", p3.Timeout())
	}
}

package pacemaker_test

import (
	"testing"
	"time"

	"repro/internal/pacemaker"
	"repro/internal/types"
)

func TestLeaderRoundRobin(t *testing.T) {
	const n = 7
	// Every window of n consecutive rounds elects every replica once.
	seen := make(map[types.ReplicaID]int)
	for r := types.Round(1); r <= n; r++ {
		seen[pacemaker.Leader(r, n)]++
	}
	if len(seen) != n {
		t.Fatalf("window covered %d of %d replicas", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("replica %v led %d times in one window", id, c)
		}
	}
	if pacemaker.Leader(1, n) != 0 {
		t.Error("replica 0 must lead round 1")
	}
	if pacemaker.Leader(n+1, n) != 0 {
		t.Error("rotation must wrap after n rounds")
	}
}

func TestAdvanceTo(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	if p.Round() != 1 {
		t.Fatalf("initial round = %d", p.Round())
	}
	if !p.AdvanceTo(3, 0, false) || p.Round() != 3 {
		t.Fatal("forward advance failed")
	}
	if p.AdvanceTo(2, 0, false) || p.Round() != 3 {
		t.Fatal("backward advance accepted")
	}
	if p.AdvanceTo(3, 0, false) {
		t.Fatal("same-round advance accepted")
	}
}

func TestTimeoutCertificate(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	mk := func(sender types.ReplicaID, r types.Round) *types.Timeout {
		return &types.Timeout{Round: r, Sender: sender}
	}
	if p.OnTimeout(mk(0, 5)) || p.OnTimeout(mk(1, 5)) {
		t.Fatal("TC before quorum")
	}
	// Duplicate sender does not advance the count.
	if p.OnTimeout(mk(1, 5)) {
		t.Fatal("duplicate timeout completed TC")
	}
	if !p.OnTimeout(mk(2, 5)) {
		t.Fatal("third distinct timeout should complete the 2f+1 TC")
	}
	// Completing again returns false (already formed).
	if p.OnTimeout(mk(3, 5)) {
		t.Fatal("TC completed twice")
	}
	if p.TimeoutCount(5) != 4 {
		t.Fatalf("timeout count = %d", p.TimeoutCount(5))
	}
}

func TestTimedOutTracking(t *testing.T) {
	p := pacemaker.New(4, 1, time.Second)
	p.MarkTimedOut(1)
	if !p.TimedOut(1) || p.TimedOut(2) {
		t.Fatal("timed-out tracking wrong")
	}
	// Old state is garbage collected on advance.
	p.AdvanceTo(10, 0, false)
	if p.TimedOut(1) {
		t.Fatal("stale timed-out state survived GC")
	}
}

func TestBackoff(t *testing.T) {
	p := pacemaker.New(4, 1, 100*time.Millisecond)
	// Default: fixed timeouts.
	p.AdvanceTo(2, 0, true)
	p.AdvanceTo(3, 0, true)
	if p.Timeout() != 100*time.Millisecond {
		t.Fatalf("default backoff changed timeout: %v", p.Timeout())
	}
	// With backoff enabled, consecutive timeout-advances grow the timer.
	p2 := pacemaker.New(4, 1, 100*time.Millisecond)
	p2.SetBackoff(2.0)
	p2.AdvanceTo(2, 0, true)
	p2.AdvanceTo(3, 0, true)
	if p2.Timeout() != 400*time.Millisecond {
		t.Fatalf("backoff timeout = %v, want 400ms", p2.Timeout())
	}
	// A QC-driven advance resets the streak.
	p2.AdvanceTo(4, 0, false)
	if p2.Timeout() != 100*time.Millisecond {
		t.Fatalf("reset timeout = %v, want 100ms", p2.Timeout())
	}
	// Backoff is capped.
	p3 := pacemaker.New(4, 1, 100*time.Millisecond)
	p3.SetBackoff(10)
	for r := types.Round(2); r < 20; r++ {
		p3.AdvanceTo(r, 0, true)
	}
	if p3.Timeout() > 32*100*time.Millisecond {
		t.Fatalf("backoff exceeded cap: %v", p3.Timeout())
	}
}

// Package engine defines the event-driven interface every consensus engine
// in this repository implements. Engines are pure state machines: they
// receive Init/OnMessage/OnTimer events carrying the current (virtual or
// wall) time and return a list of Outputs. They never touch clocks, sockets
// or goroutines themselves, which lets the same engine run deterministically
// under the discrete-event simulator (internal/simnet) and under the real
// TCP runtime (internal/runtime).
package engine

import (
	"time"

	"repro/internal/types"
)

// Engine is an event-driven replica state machine.
type Engine interface {
	// ID returns the replica this engine instance embodies.
	ID() types.ReplicaID
	// Init is called once at startup and returns the initial outputs
	// (typically the round-1 proposal if the replica is the first leader,
	// plus the first round timer).
	Init(now time.Duration) []Output
	// OnMessage delivers one consensus message from another replica.
	OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []Output
	// OnTimer fires a timer previously requested via SetTimer. Engines must
	// tolerate stale timers (e.g. a round timer firing after the round
	// already advanced).
	OnTimer(now time.Duration, id int) []Output
}

// Pipelined is implemented by engines whose message handling splits into a
// stateless prevalidation stage and the serial state-machine stage. The
// split is what lets runtimes take signature verification — the dominant
// cost under real crypto — off the single-threaded event loop: transports
// and worker pools call Prevalidate concurrently, drop messages that fail,
// and deliver survivors through OnVerifiedMessage, which skips every
// signature check Prevalidate already performed.
//
// Contract:
//
//   - Prevalidate must be pure with respect to replica state: it may read
//     only immutable configuration (keys, quorum size, cluster shape) and
//     internally synchronized caches, never the protocol state machine. It
//     is safe to call from any number of goroutines concurrently with the
//     event loop.
//   - Prevalidate failing means the message is discardable: the state stage
//     would have dropped it without producing outputs. Runtimes must not
//     deliver a message whose Prevalidate returned an error.
//   - OnVerifiedMessage must produce byte-identical outputs to OnMessage for
//     any message that passes Prevalidate — the fixed-seed determinism
//     oracle in internal/harness pins this equivalence.
//   - Per-sender FIFO: runtimes must preserve the relative order of
//     messages from one sender between Prevalidate and OnVerifiedMessage.
//     Cross-sender order is unconstrained, exactly like the network.
type Pipelined interface {
	Engine
	// Prevalidate runs every stateless check on msg: structural sanity,
	// signatures, certificate verification. A nil error marks the message
	// deliverable via OnVerifiedMessage.
	Prevalidate(from types.ReplicaID, msg types.Message) error
	// OnVerifiedMessage is OnMessage for a message that already passed
	// Prevalidate (or was generated locally): signature and certificate
	// checks are skipped, state transitions are identical.
	OnVerifiedMessage(now time.Duration, from types.ReplicaID, msg types.Message) []Output
}

// Output is one action requested by an engine. The concrete types below are
// the full set; runtimes switch on them.
type Output interface{ isOutput() }

// Send transmits a message to one replica.
type Send struct {
	To  types.ReplicaID
	Msg types.Message
}

// Broadcast transmits a message to every other replica; when SelfDeliver is
// set the engine also receives its own copy (DiemBFT leaders process their
// own proposals through the same code path as everyone else).
type Broadcast struct {
	Msg         types.Message
	SelfDeliver bool
}

// SetTimer requests an OnTimer(id) callback after Delay.
type SetTimer struct {
	ID    int
	Delay time.Duration
}

// Commit reports a regular (f-strong) commit of Block and, implicitly, all
// its ancestors. Runtimes and the harness use it for latency/throughput
// accounting; Height ordering is guaranteed per replica.
type Commit struct {
	Block *types.Block
}

// Strength reports that Block's strong-commit level rose to X (the commit
// now tolerates X Byzantine faults, Definition 1).
type Strength struct {
	Block *types.Block
	X     int
}

func (Send) isOutput()      {}
func (Broadcast) isOutput() {}
func (SetTimer) isOutput()  {}
func (Commit) isOutput()    {}
func (Strength) isOutput()  {}

package mempool

import (
	"repro/internal/types"
)

// ConflictGate implements Section 5's "Conflicting Transactions" policy:
// while a high-valued transaction is waiting to be strong committed at its
// required level, later transactions from the same sender are held back so
// that a weaker, earlier-committed conflicting transaction can never
// overtake a stronger one still in flight.
//
// Usage: route transactions through Submit instead of Pool.Add; call
// OnCommitted when a block commits and OnStrengthened as levels rise.
type ConflictGate struct {
	pool *Pool

	// required[sender] > 0 means the sender has an in-flight transaction
	// needing that strength; held transactions queue behind it.
	required map[uint32]int
	held     map[uint32][]types.Transaction
	// inFlight maps a block to the senders whose gating transaction it
	// carries.
	watch map[types.BlockID][]uint32
	// pending transactions by sender awaiting block inclusion.
	pendingSender map[uint32]bool
	heldCount     int
}

// NewConflictGate wraps a pool with the hold-back policy.
func NewConflictGate(pool *Pool) *ConflictGate {
	return &ConflictGate{
		pool:          pool,
		required:      make(map[uint32]int),
		held:          make(map[uint32][]types.Transaction),
		watch:         make(map[types.BlockID][]uint32),
		pendingSender: make(map[uint32]bool),
	}
}

// Submit enqueues a transaction. requiredStrength > 0 marks it high-valued:
// until the block containing it is requiredStrength-strong committed, later
// transactions from the same sender are held.
func (g *ConflictGate) Submit(txn types.Transaction, requiredStrength int) {
	if g.required[txn.Sender] > 0 {
		g.held[txn.Sender] = append(g.held[txn.Sender], txn)
		g.heldCount++
		return
	}
	if requiredStrength > 0 {
		g.required[txn.Sender] = requiredStrength
		g.pendingSender[txn.Sender] = true
	}
	g.pool.Add(txn)
}

// OnIncluded tells the gate that block b carries the given transactions
// (the leader calls this when building a proposal, every replica when a
// block commits). Gating senders are attached to the block so strength
// updates can release them.
func (g *ConflictGate) OnIncluded(b types.BlockID, txns []types.Transaction) {
	for _, txn := range txns {
		if g.pendingSender[txn.Sender] {
			g.watch[b] = append(g.watch[b], txn.Sender)
			delete(g.pendingSender, txn.Sender)
		}
	}
}

// OnStrengthened tells the gate a block reached strength x; senders whose
// gating transaction rode that block and whose requirement x satisfies are
// released, and their held transactions flow into the pool (in order).
func (g *ConflictGate) OnStrengthened(b types.BlockID, x int) {
	senders := g.watch[b]
	if len(senders) == 0 {
		return
	}
	remaining := senders[:0]
	for _, s := range senders {
		req, ok := g.required[s]
		if !ok {
			continue
		}
		if x < req {
			remaining = append(remaining, s)
			continue
		}
		delete(g.required, s)
		for _, txn := range g.held[s] {
			g.pool.Add(txn)
			g.heldCount--
		}
		delete(g.held, s)
	}
	if len(remaining) == 0 {
		delete(g.watch, b)
	} else {
		g.watch[b] = remaining
	}
}

// Held returns the number of transactions currently held back.
func (g *ConflictGate) Held() int { return g.heldCount }

// Gated reports whether the sender currently has an unreleased high-value
// transaction in flight.
func (g *ConflictGate) Gated(sender uint32) bool { return g.required[sender] > 0 }

package mempool_test

import (
	"testing"

	"repro/internal/mempool"
	"repro/internal/types"
)

func txns(n int) []types.Transaction {
	out := make([]types.Transaction, n)
	for i := range out {
		out[i] = types.Transaction{Sender: 1, Seq: uint64(i + 1)}
	}
	return out
}

func TestBatchFIFO(t *testing.T) {
	p := mempool.New(0)
	p.Add(txns(5)...)
	if p.Len() != 5 {
		t.Fatalf("len = %d", p.Len())
	}
	b := p.Batch(3)
	if len(b) != 3 || b[0].Seq != 1 || b[2].Seq != 3 {
		t.Fatalf("batch = %v", b)
	}
	if p.Len() != 2 {
		t.Fatalf("remaining = %d", p.Len())
	}
	// Draining more than available returns what's left.
	b = p.Batch(10)
	if len(b) != 2 || b[0].Seq != 4 {
		t.Fatalf("tail batch = %v", b)
	}
	if len(p.Batch(1)) != 0 {
		t.Fatal("empty pool returned transactions")
	}
}

func TestCapacityDrops(t *testing.T) {
	p := mempool.New(3)
	p.Add(txns(5)...)
	if p.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", p.Len())
	}
	if p.Dropped() != 2 {
		t.Fatalf("dropped = %d", p.Dropped())
	}
}

package mempool_test

import (
	"testing"

	"repro/internal/mempool"
	"repro/internal/types"
)

func TestConflictGateHoldsSameSender(t *testing.T) {
	pool := mempool.New(0)
	g := mempool.NewConflictGate(pool)

	high := types.Transaction{Sender: 1, Seq: 1, Data: []byte("pay=1000000")}
	g.Submit(high, 4) // requires 4-strong commit
	if pool.Len() != 1 {
		t.Fatal("gating transaction not pooled")
	}
	// Later transactions from the same sender are held...
	g.Submit(types.Transaction{Sender: 1, Seq: 2}, 0)
	g.Submit(types.Transaction{Sender: 1, Seq: 3}, 0)
	if pool.Len() != 1 || g.Held() != 2 {
		t.Fatalf("pool=%d held=%d", pool.Len(), g.Held())
	}
	// ...while other senders flow freely.
	g.Submit(types.Transaction{Sender: 2, Seq: 1}, 0)
	if pool.Len() != 2 {
		t.Fatal("unrelated sender blocked")
	}
	if !g.Gated(1) || g.Gated(2) {
		t.Fatal("gating state wrong")
	}
}

func TestConflictGateReleaseOnStrength(t *testing.T) {
	pool := mempool.New(0)
	g := mempool.NewConflictGate(pool)
	blk := types.BlockID{7}

	high := types.Transaction{Sender: 1, Seq: 1}
	g.Submit(high, 4)
	g.Submit(types.Transaction{Sender: 1, Seq: 2}, 0)

	// The leader includes the gating transaction in block blk.
	batch := pool.Batch(10)
	g.OnIncluded(blk, batch)

	// Strength below the requirement: still held.
	g.OnStrengthened(blk, 3)
	if g.Held() != 1 || !g.Gated(1) {
		t.Fatal("released below required strength")
	}
	// Requirement met: held transactions flow into the pool in order.
	g.OnStrengthened(blk, 4)
	if g.Held() != 0 || g.Gated(1) {
		t.Fatal("not released at required strength")
	}
	out := pool.Batch(10)
	if len(out) != 1 || out[0].Seq != 2 {
		t.Fatalf("released txns: %v", out)
	}
	// Idempotent on repeat notifications.
	g.OnStrengthened(blk, 5)
	if pool.Len() != 0 {
		t.Fatal("double release")
	}
}

func TestConflictGateMultipleSendersOneBlock(t *testing.T) {
	pool := mempool.New(0)
	g := mempool.NewConflictGate(pool)
	blk := types.BlockID{9}

	g.Submit(types.Transaction{Sender: 1, Seq: 1}, 2)
	g.Submit(types.Transaction{Sender: 2, Seq: 1}, 6)
	g.Submit(types.Transaction{Sender: 1, Seq: 2}, 0)
	g.Submit(types.Transaction{Sender: 2, Seq: 2}, 0)

	g.OnIncluded(blk, pool.Batch(10))
	g.OnStrengthened(blk, 4) // satisfies sender 1 (2), not sender 2 (6)
	if g.Gated(1) || !g.Gated(2) {
		t.Fatal("partial release wrong")
	}
	g.OnStrengthened(blk, 6)
	if g.Gated(2) || g.Held() != 0 {
		t.Fatal("final release wrong")
	}
}

// Package mempool buffers client transactions awaiting inclusion in a
// block. Leaders drain a batch per proposal; the paper keeps leaders
// saturated ("sufficiently many transactions are generated ... so that any
// leader always has enough transactions").
package mempool

import (
	"repro/internal/types"
)

// Pool is a FIFO transaction buffer. Not safe for concurrent use; the
// runtime serializes access (the TCP runtime wraps it with its own lock).
type Pool struct {
	pending []types.Transaction
	// dropped counts transactions discarded due to the cap.
	dropped int64
	// cap bounds memory; 0 means unbounded.
	cap int
}

// New creates a pool bounded to capacity transactions (0 = unbounded).
func New(capacity int) *Pool {
	return &Pool{cap: capacity}
}

// Add appends transactions, dropping the excess beyond capacity.
func (p *Pool) Add(txns ...types.Transaction) {
	for _, t := range txns {
		if p.cap > 0 && len(p.pending) >= p.cap {
			p.dropped++
			continue
		}
		p.pending = append(p.pending, t)
	}
}

// Batch removes and returns up to max transactions.
func (p *Pool) Batch(max int) []types.Transaction {
	n := min(max, len(p.pending))
	out := make([]types.Transaction, n)
	copy(out, p.pending[:n])
	p.pending = p.pending[n:]
	return out
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int { return len(p.pending) }

// Dropped returns the number of transactions discarded at capacity.
func (p *Pool) Dropped() int64 { return p.dropped }

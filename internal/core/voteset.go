package core

import (
	"sort"

	"repro/internal/types"
)

// VoteSet collects the votes for one block: a voter bitmap for O(1) dedup
// plus a dense array of the accepted votes. It replaces the engines'
// map[ReplicaID]Vote inner maps, which cost a map allocation per candidate
// block and hashing per vote — at n=101 with a handful of candidate blocks in
// flight that map-of-maps bookkeeping was the last super-linear term on the
// vote path. The bitmap doubles as the seed for the compact certificate's
// signer bitmap (types.AggCert).
//
// Mark records a voter without retaining a vote; the engines use it to
// reinstate "already seen" state from the journal so a replayed vote is
// deduplicated but never double-counted toward a new certificate, and the
// FBFT direct tracker uses it to count distinct direct voters without storing
// votes at all.
type VoteSet struct {
	words  []uint64
	votes  []types.Vote
	marked int
}

// Mark records the voter's bit and reports whether it was newly set.
func (s *VoteSet) Mark(id types.ReplicaID) bool {
	w := int(id) >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	bit := uint64(1) << (id & 63)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	s.marked++
	return true
}

// Has reports whether the voter's bit is set (whether via Add or Mark).
// Safe on a nil set, so callers can probe a map entry without creating it.
func (s *VoteSet) Has(id types.ReplicaID) bool {
	if s == nil {
		return false
	}
	w := int(id) >> 6
	return w < len(s.words) && s.words[w]&(1<<(id&63)) != 0
}

// Add retains the vote unless its voter is already present, reporting
// whether it was accepted.
func (s *VoteSet) Add(v types.Vote) bool {
	if !s.Mark(v.Voter) {
		return false
	}
	s.votes = append(s.votes, v)
	return true
}

// Len returns the number of retained votes (Add calls, not Mark calls).
// Safe on a nil set.
func (s *VoteSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.votes)
}

// Count returns the number of distinct voters seen via Add or Mark.
// Safe on a nil set.
func (s *VoteSet) Count() int {
	if s == nil {
		return 0
	}
	return s.marked
}

// Sorted returns a fresh slice of the retained votes in ascending voter
// order — the canonical order certificates are assembled in, so QCs formed
// from a VoteSet are byte-identical to those the map-based collection
// produced.
func (s *VoteSet) Sorted() []types.Vote {
	out := make([]types.Vote, len(s.votes))
	copy(out, s.votes)
	sort.Slice(out, func(i, j int) bool { return out[i].Voter < out[j].Voter })
	return out
}

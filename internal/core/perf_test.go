package core

import (
	"testing"

	"repro/internal/blockstore"
	"repro/internal/types"
)

func TestEndorserSetBasics(t *testing.T) {
	s := newEndorserSet(10)
	if s.size() != 0 || s.countBelow(5) != 0 {
		t.Fatal("fresh set not empty")
	}
	if !s.add(3, 7) {
		t.Fatal("first add did not improve")
	}
	if s.add(3, 7) || s.add(3, 9) {
		t.Fatal("equal-or-higher key reported as improvement")
	}
	if !s.add(3, 2) {
		t.Fatal("lower key did not improve")
	}
	s.add(0, unconditional)
	s.add(9, 4)
	if got := s.size(); got != 3 {
		t.Fatalf("size=%d, want 3", got)
	}
	// countBelow(3): voter 3 (key 2), voter 0 (unconditional). Voter 9 (key 4) excluded.
	if got := s.countBelow(3); got != 2 {
		t.Fatalf("countBelow(3)=%d, want 2", got)
	}
	if got := s.countBelow(100); got != 3 {
		t.Fatalf("countBelow(100)=%d, want 3", got)
	}
}

func TestEndorserSetWordBoundaries(t *testing.T) {
	s := newEndorserSet(130)
	for _, v := range []types.ReplicaID{0, 63, 64, 127, 128, 129} {
		if !s.add(v, uint64(v)+1) {
			t.Fatalf("add(%d) did not improve", v)
		}
	}
	if s.size() != 6 {
		t.Fatalf("size=%d, want 6", s.size())
	}
	if got := s.countBelow(65); got != 2 { // keys 1 and 64
		t.Fatalf("countBelow(65)=%d, want 2", got)
	}
	// Out-of-range voters grow the set instead of panicking.
	if !s.add(500, 1) {
		t.Fatal("out-of-range add failed")
	}
	if s.size() != 7 {
		t.Fatalf("size=%d after grow, want 7", s.size())
	}
}

// buildChain makes a linear chain of n certified blocks and returns the
// store, the blocks, and one QC per block signed by voters [0, quorum).
func buildChain(tb testing.TB, n, voters int) (*blockstore.Store, []*types.Block, []*types.QC) {
	tb.Helper()
	store := blockstore.New()
	parent := store.Genesis()
	blocks := make([]*types.Block, 0, n)
	qcs := make([]*types.QC, 0, n)
	for i := 1; i <= n; i++ {
		b := types.NewBlock(parent.ID(), types.NewGenesisQC(parent.ID()), types.Round(i), types.Height(i), 0, int64(i), types.Payload{}, nil)
		if err := store.Insert(b); err != nil {
			tb.Fatal(err)
		}
		qc := &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height}
		for v := 0; v < voters; v++ {
			qc.Votes = append(qc.Votes, types.Vote{
				Block: b.ID(), Round: b.Round, Height: b.Height, Voter: types.ReplicaID(v),
			})
		}
		qcs = append(qcs, qc)
		blocks = append(blocks, b)
		parent = b
	}
	return store, blocks, qcs
}

// BenchmarkTrackerOnQC measures the steady-state endorsement bookkeeping: a
// fresh QC arriving at the tip of a long chain, with marker-coverage making
// the walk O(1) per vote and the bitset sets avoiding per-vote hashing.
func BenchmarkTrackerOnQC(b *testing.B) {
	const chain = 256
	const n, f = 31, 10
	store, _, qcs := buildChain(b, chain, 2*f+1)
	tr := NewTracker(store, Config{N: n, F: f, Mode: ModeRound, Horizon: 2*n + 16})
	// Feed all but the last QC so the benchmark hits a warm tracker.
	for _, qc := range qcs[:chain-1] {
		tr.OnQC(qc)
	}
	last := qcs[chain-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset only the processed counter so the unpack path runs fully.
		tr.processed[last.Block] = 0
		tr.OnQC(last)
	}
}

// BenchmarkMarker measures the vote-marker computation against a deep chain
// and a full vote history — the single hottest path of the simulations
// before PR 1 made it one indexed walk.
func BenchmarkMarker(b *testing.B) {
	const chain = 256
	store, blocks, _ := buildChain(b, chain, 1)
	h := NewVoteHistory(store)
	for _, blk := range blocks[:chain-1] {
		h.RecordVote(blk)
	}
	target := blocks[chain-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := h.Marker(target); m != 0 {
			b.Fatalf("marker=%d on a fork-free chain", m)
		}
	}
}

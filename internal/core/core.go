// Package core implements the paper's primary contribution: the
// strengthened-fault-tolerance (SFT) machinery layered on chain-based BFT
// SMR (Sections 3.2–3.4 and Appendix D of "Strengthened Fault Tolerance in
// Byzantine Fault Tolerant Replication", ICDCS 2021).
//
// It provides three pieces, all protocol-agnostic so that both the DiemBFT
// and the Streamlet engines reuse them:
//
//   - VoteHistory: per-replica bookkeeping of every block the replica voted
//     for, used to compute the marker (Section 3.2) or the generalized
//     endorsement interval set I (Section 3.4) attached to each strong-vote.
//
//   - Tracker: per-replica endorsement accounting. Every strong-QC observed
//     in the chain is unpacked into endorsements of the certified block and
//     of its ancestors (a strong-vote for B' endorses an ancestor B iff
//     marker < B.round, or B.round ∈ I), and the strong 3-chain rule is
//     re-evaluated incrementally to detect x-strong commits.
//
//   - The Appendix C "naive" mode, which counts every indirect vote as an
//     endorsement regardless of markers, retained so tests and examples can
//     reproduce the paper's counter-example showing that mode is unsafe.
package core

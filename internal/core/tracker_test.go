package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intervals"
	"repro/internal/types"
)

// qcFor fabricates a QC with explicit per-voter markers.
func qcFor(b *types.Block, markers map[types.ReplicaID]types.Round) *types.QC {
	votes := make([]types.Vote, 0, len(markers))
	for voter, m := range markers {
		votes = append(votes, types.Vote{
			Block: b.ID(), Round: b.Round, Height: b.Height, Voter: voter, Marker: m,
		})
	}
	return &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
}

// sameMarkers builds a voters->marker map with one marker for all.
func sameMarkers(m types.Round, voters ...types.ReplicaID) map[types.ReplicaID]types.Round {
	out := make(map[types.ReplicaID]types.Round, len(voters))
	for _, v := range voters {
		out[v] = m
	}
	return out
}

func TestTrackerRegularCommitEqualsFStrong(t *testing.T) {
	// n=4, f=1: three chained QCs with consecutive rounds and quorum-size
	// vote sets must yield exactly f-strong (x = 2f+1 - f - 1 = f).
	w := newWorld(t)
	var events []int
	tr := core.NewTracker(w.store, core.Config{
		N: 4, F: 1, Mode: core.ModeRound,
		OnStrength: func(b *types.Block, x int) { events = append(events, x) },
	})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)

	tr.OnQC(qcFor(b1, sameMarkers(0, 0, 1, 2)))
	tr.OnQC(qcFor(b2, sameMarkers(0, 0, 1, 2)))
	if tr.Strength(b1.ID()) != -1 {
		t.Fatal("strong commit before 3-chain complete")
	}
	tr.OnQC(qcFor(b3, sameMarkers(0, 0, 1, 2)))
	if got := tr.Strength(b1.ID()); got != 1 {
		t.Fatalf("b1 strength = %d, want f=1", got)
	}
	if len(events) == 0 || events[0] != 1 {
		t.Fatalf("strength events = %v", events)
	}
	// b2, b3 are not yet strong committed (no 3-chain starting at them).
	if tr.Strength(b3.ID()) != -1 {
		t.Fatal("b3 cannot be strong committed yet")
	}
}

func TestTrackerIndirectEndorsementsRaiseStrength(t *testing.T) {
	// n=7, f=2: the 3-chain QCs hold 5 votes each; later QCs from the other
	// two replicas (markers 0) endorse the old blocks and lift them to 2f.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 7, F: 2, Mode: core.ModeRound})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)
	b4 := w.mk(b3, 4)
	b5 := w.mk(b4, 5)

	quorum := sameMarkers(0, 0, 1, 2, 3, 4)
	tr.OnQC(qcFor(b1, quorum))
	tr.OnQC(qcFor(b2, quorum))
	tr.OnQC(qcFor(b3, quorum))
	if got := tr.Strength(b1.ID()); got != 2 {
		t.Fatalf("b1 strength = %d, want f=2", got)
	}
	// Replicas 5 and 6 appear in later QCs; their votes endorse all
	// ancestors (marker 0), raising the 3-chain to 7 endorsers each.
	tr.OnQC(qcFor(b4, sameMarkers(0, 0, 1, 2, 3, 4, 5, 6)))
	tr.OnQC(qcFor(b5, sameMarkers(0, 0, 1, 2, 3, 4, 5, 6)))
	if got := tr.Strength(b1.ID()); got != 4 {
		t.Fatalf("b1 strength = %d, want 2f=4", got)
	}
	if got := tr.Endorsers(b1.ID()); got != 7 {
		t.Fatalf("b1 endorsers = %d, want 7", got)
	}
}

func TestTrackerMarkerBlocksForkedVoters(t *testing.T) {
	// A voter whose marker equals the ancestor's round must NOT endorse it.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeRound})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)

	// Voter 3 voted on a conflicting fork at round 1: marker 1.
	tr.OnQC(qcFor(b1, sameMarkers(0, 0, 1, 2)))
	markers := map[types.ReplicaID]types.Round{0: 0, 1: 0, 2: 0, 3: 1}
	tr.OnQC(qcFor(b2, markers))

	// Voter 3's vote for b2 endorses b2 (direct) but not b1 (round 1 and
	// marker 1: 1 < 1 fails).
	if got := tr.Endorsers(b2.ID()); got != 4 {
		t.Fatalf("b2 endorsers = %d, want 4", got)
	}
	if got := tr.Endorsers(b1.ID()); got != 3 {
		t.Fatalf("b1 endorsers = %d, want 3 (voter 3 blocked by marker)", got)
	}
}

func TestTrackerIntervalVotes(t *testing.T) {
	// Interval votes endorse rounds inside the set, with gaps respected.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeRound})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)

	tr.OnQC(qcFor(b1, sameMarkers(0, 0, 1, 2)))
	tr.OnQC(qcFor(b2, sameMarkers(0, 0, 1, 2)))
	// Voter 3's interval vote for b3 endorses {1, 3} but not 2.
	iv := types.Vote{
		Block: b3.ID(), Round: 3, Height: b3.Height, Voter: 3,
		HasIntervals: true,
		Intervals: intervals.New(
			intervals.Interval{Lo: 1, Hi: 1},
			intervals.Interval{Lo: 3, Hi: 3},
		),
	}
	qc := qcFor(b3, sameMarkers(0, 0, 1, 2))
	qc.Votes = append(qc.Votes, iv)
	tr.OnQC(qc)

	if got := tr.Endorsers(b1.ID()); got != 4 {
		t.Fatalf("b1 endorsers = %d, want 4 (interval contains 1)", got)
	}
	if got := tr.Endorsers(b2.ID()); got != 3 {
		t.Fatalf("b2 endorsers = %d, want 3 (interval gap at 2)", got)
	}
	if got := tr.Endorsers(b3.ID()); got != 4 {
		t.Fatalf("b3 endorsers = %d, want 4 (direct)", got)
	}
}

func TestTrackerAncestorInheritance(t *testing.T) {
	// "x-strong commits a block Bk and all its ancestors": raising a
	// descendant raises every ancestor below it.
	w := newWorld(t)
	raised := make(map[types.Height]int)
	tr := core.NewTracker(w.store, core.Config{
		N: 4, F: 1, Mode: core.ModeRound,
		OnStrength: func(b *types.Block, x int) { raised[b.Height] = x },
	})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)
	b4 := w.mk(b3, 4)
	b5 := w.mk(b4, 5)

	all := sameMarkers(0, 0, 1, 2, 3)
	for _, b := range []*types.Block{b1, b2, b3, b4, b5} {
		tr.OnQC(qcFor(b, all))
	}
	// b2's own 3-chain (b2,b3,b4) reached 4 endorsers each -> 2f; b1 must
	// inherit at least the same.
	if tr.Strength(b2.ID()) != 2 || tr.Strength(b1.ID()) < tr.Strength(b2.ID()) {
		t.Fatalf("strengths b1=%d b2=%d", tr.Strength(b1.ID()), tr.Strength(b2.ID()))
	}
	if raised[1] != 2 || raised[2] != 2 {
		t.Fatalf("raised events: %v", raised)
	}
}

func TestTrackerNonConsecutiveRoundsNoCommit(t *testing.T) {
	// A round gap in the 3-chain must prevent strong commits at the gap.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeRound})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 4) // gap: round 4, not 3

	all := sameMarkers(0, 0, 1, 2, 3)
	tr.OnQC(qcFor(b1, all))
	tr.OnQC(qcFor(b2, all))
	tr.OnQC(qcFor(b3, all))
	if tr.Strength(b1.ID()) != -1 {
		t.Fatal("strong commit across a round gap")
	}
}

func TestTrackerHorizonBoundsWalk(t *testing.T) {
	// With Horizon=2, endorsements do not reach more than 2 ancestors up.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeRound, Horizon: 2})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)
	b4 := w.mk(b3, 4)

	tr.OnQC(qcFor(b4, sameMarkers(0, 0, 1, 2)))
	if tr.Endorsers(b3.ID()) != 3 || tr.Endorsers(b2.ID()) != 3 {
		t.Error("within-horizon ancestors not endorsed")
	}
	if tr.Endorsers(b1.ID()) != 0 {
		t.Error("beyond-horizon ancestor endorsed")
	}
}

func TestTrackerDuplicateQCIgnored(t *testing.T) {
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeRound})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	qc := qcFor(b1, sameMarkers(0, 0, 1, 2))
	tr.OnQC(qc)
	tr.OnQC(qc) // replay
	if got := tr.Endorsers(b1.ID()); got != 3 {
		t.Fatalf("endorsers after replay = %d", got)
	}
	// A larger QC for the same block is processed.
	tr.OnQC(qcFor(b1, sameMarkers(0, 0, 1, 2, 3)))
	if got := tr.Endorsers(b1.ID()); got != 4 {
		t.Fatalf("bigger QC ignored: %d", got)
	}
}

func TestTrackerHeightModeKEndorsements(t *testing.T) {
	// SFT-Streamlet: a vote k-endorses ancestors for thresholds above its
	// height marker.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeHeight})
	g := w.store.Genesis()
	b1 := w.mk(g, 1) // height 1
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3) // height 3

	tr.OnQC(qcFor(b1, sameMarkers(0, 0, 1, 2)))
	tr.OnQC(qcFor(b2, sameMarkers(0, 0, 1, 2)))
	// Voter 3 voted a conflicting block at height 2: its height marker is 2.
	qc := qcFor(b3, sameMarkers(0, 0, 1, 2))
	qc.Votes = append(qc.Votes, types.Vote{
		Block: b3.ID(), Round: 3, Height: 3, Voter: 3, Marker: 2,
	})
	tr.OnQC(qc)

	// For threshold k=3 voter 3's vote k-endorses b2 (2 < 3)...
	if got := tr.EndorsersAt(b2.ID(), 3); got != 4 {
		t.Fatalf("b2 3-endorsers = %d, want 4", got)
	}
	// ...but for threshold k=2 it does not (2 < 2 fails).
	if got := tr.EndorsersAt(b2.ID(), 2); got != 3 {
		t.Fatalf("b2 2-endorsers = %d, want 3", got)
	}
	// Direct votes endorse for any k.
	if got := tr.EndorsersAt(b3.ID(), 1); got != 4 {
		t.Fatalf("b3 direct endorsers = %d, want 4", got)
	}
}

func TestTrackerHeightModeStrongCommit(t *testing.T) {
	// The SFT-Streamlet rule: B_{k-1}, B_k, B_k+1 with consecutive rounds,
	// each with >= x+f+1 k-endorsers, commits the MIDDLE block.
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeHeight})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)

	all := sameMarkers(0, 0, 1, 2, 3)
	tr.OnQC(qcFor(b1, all))
	tr.OnQC(qcFor(b2, all))
	tr.OnQC(qcFor(b3, all))
	if got := tr.Strength(b2.ID()); got != 2 {
		t.Fatalf("middle block strength = %d, want 2f=2", got)
	}
	if got := tr.Strength(b1.ID()); got != 2 {
		t.Fatalf("ancestor strength = %d, want inherited 2", got)
	}
	if tr.Strength(b3.ID()) != -1 {
		t.Fatal("last block of the 3-chain cannot be strong committed yet")
	}
}

func TestTrackerForget(t *testing.T) {
	w := newWorld(t)
	tr := core.NewTracker(w.store, core.Config{N: 4, F: 1, Mode: core.ModeRound})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	tr.OnQC(qcFor(b1, sameMarkers(0, 0, 1, 2)))
	tr.OnQC(qcFor(b2, sameMarkers(0, 0, 1, 2)))
	tr.Forget(2)
	if tr.Endorsers(b1.ID()) != 0 {
		t.Error("forgotten block still has endorsers")
	}
	if tr.Endorsers(b2.ID()) == 0 {
		t.Error("retained block lost endorsers")
	}
}

package core

import (
	"repro/internal/blockstore"
	"repro/internal/types"
)

// DirectTracker implements the Appendix B baseline ("FBFT adapted to
// DiemBFT"): strong commits are driven purely by *direct* signed votes per
// block — x-strong commit requires a 3-chain whose blocks each carry at
// least x+f+1 distinct direct votes. Late votes beyond the initial 2f+1 are
// multicast by the round's leader (ExtraVote messages), which is what costs
// the baseline O(n^2) messages per decision.
type DirectTracker struct {
	store *blockstore.Store
	f     int
	votes map[types.BlockID]*VoteSet

	strength   map[types.BlockID]int
	onStrength func(b *types.Block, x int)
}

// NewDirectTracker creates a direct-vote strength tracker.
func NewDirectTracker(store *blockstore.Store, f int, onStrength func(b *types.Block, x int)) *DirectTracker {
	return &DirectTracker{
		store:      store,
		f:          f,
		votes:      make(map[types.BlockID]*VoteSet),
		strength:   make(map[types.BlockID]int),
		onStrength: onStrength,
	}
}

// OnQC credits every vote inside the certificate as a direct vote.
func (t *DirectTracker) OnQC(qc *types.QC) {
	for i := range qc.Votes {
		t.AddVote(qc.Block, qc.Votes[i].Voter)
	}
}

// AddVote credits one direct vote (from a QC or a relayed ExtraVote) and
// re-evaluates the 3-chains around the block.
func (t *DirectTracker) AddVote(block types.BlockID, voter types.ReplicaID) {
	set, ok := t.votes[block]
	if !ok {
		set = &VoteSet{}
		t.votes[block] = set
	}
	if !set.Mark(voter) {
		return
	}
	b := t.store.Block(block)
	if b == nil {
		return
	}
	// The changed block can be the 1st, 2nd or 3rd element of a 3-chain.
	t.evaluate(b)
	if p := t.store.Parent(block); p != nil {
		t.evaluate(p)
		if gp := t.store.Parent(p.ID()); gp != nil {
			t.evaluate(gp)
		}
	}
}

// DirectVotes returns the number of distinct direct votes known for block.
func (t *DirectTracker) DirectVotes(block types.BlockID) int { return t.votes[block].Count() }

// Strength returns the highest x such that the block is x-strong committed
// under the direct-vote rule, or -1.
func (t *DirectTracker) Strength(block types.BlockID) int {
	if x, ok := t.strength[block]; ok {
		return x
	}
	return -1
}

func (t *DirectTracker) evaluate(bk *types.Block) {
	best := -1
	t.store.VisitChildren(bk.ID(), func(b1 *types.Block) bool {
		if b1.Round != bk.Round+1 {
			return true
		}
		t.store.VisitChildren(b1.ID(), func(b2 *types.Block) bool {
			if b2.Round != bk.Round+2 {
				return true
			}
			e := min(t.DirectVotes(bk.ID()), t.DirectVotes(b1.ID()), t.DirectVotes(b2.ID()))
			if x := e - t.f - 1; x > best {
				best = x
			}
			return true
		})
		return true
	})
	if best < t.f {
		return
	}
	for cur := bk; cur != nil && !cur.IsGenesis(); cur = t.store.Parent(cur.ID()) {
		old, ok := t.strength[cur.ID()]
		if ok && old >= best {
			return
		}
		t.strength[cur.ID()] = best
		if t.onStrength != nil {
			t.onStrength(cur, best)
		}
	}
}

// Forget releases bookkeeping below the given height.
func (t *DirectTracker) Forget(below types.Height) {
	for id := range t.votes {
		if b := t.store.Block(id); b == nil || b.Height < below {
			delete(t.votes, id)
			delete(t.strength, id)
		}
	}
}

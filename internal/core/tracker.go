package core

import (
	"math/bits"

	"repro/internal/blockstore"
	"repro/internal/types"
)

// endorserSet is one block's endorser bookkeeping: a presence bitset over
// replica IDs plus a flat per-replica key array, replacing the former
// map[ReplicaID]uint64 inner maps. Membership, key updates, and counting are
// all plain array indexing and popcount — no hashing on the per-vote path.
type endorserSet struct {
	words []uint64 // presence bitset, bit v set ⇔ replica v endorses
	keys  []uint64 // minimum coverage/threshold key per replica, valid where the bit is set
	count int      // number of set bits, maintained incrementally
}

func newEndorserSet(n int) *endorserSet {
	return &endorserSet{
		words: make([]uint64, (n+63)/64),
		keys:  make([]uint64, n),
	}
}

// add records voter with the given key, keeping the minimum key seen, and
// reports whether the record improved (new voter, or a strictly lower key).
func (s *endorserSet) add(voter types.ReplicaID, key uint64) bool {
	v := int(voter)
	if v >= len(s.keys) {
		// Out-of-range IDs cannot occur with a well-formed cluster; grow
		// rather than panic so malformed input stays merely ineffective.
		s.grow(v + 1)
	}
	w, m := v>>6, uint64(1)<<(v&63)
	if s.words[w]&m != 0 {
		if s.keys[v] <= key {
			return false
		}
		s.keys[v] = key
		return true
	}
	s.words[w] |= m
	s.keys[v] = key
	s.count++
	return true
}

func (s *endorserSet) grow(n int) {
	words := make([]uint64, (n+63)/64)
	copy(words, s.words)
	s.words = words
	keys := make([]uint64, n)
	copy(keys, s.keys)
	s.keys = keys
}

// size returns the number of endorsers regardless of keys.
func (s *endorserSet) size() int {
	if s == nil {
		return 0
	}
	return s.count
}

// countBelow returns the number of endorsers whose key permits k-endorsement
// at threshold k (key < k, or the unconditional key from a direct vote).
func (s *endorserSet) countBelow(k uint64) int {
	if s == nil {
		return 0
	}
	n := 0
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			if key := s.keys[base+b]; key < k || key == unconditional {
				n++
			}
		}
	}
	return n
}

// Mode selects which chain coordinate markers are compared against.
type Mode int

const (
	// ModeRound is SFT-DiemBFT (Section 3.2): a strong-vote for B' endorses
	// an ancestor B iff marker < B.round (or B.round ∈ I).
	ModeRound Mode = iota + 1
	// ModeHeight is SFT-Streamlet (Appendix D): markers carry heights and a
	// vote k-endorses an ancestor iff marker < k, where k is the height of
	// the block being strong-committed (the middle block of the 3-chain).
	ModeHeight
)

// unconditional is the stored key for direct votes, which endorse their own
// block regardless of marker (the "B = B'" clause of the endorsement
// definition).
const unconditional = uint64(0)

// Config parameterizes a Tracker.
type Config struct {
	// N and F are the replica count and the worst-case fault bound
	// (N = 3F+1).
	N, F int
	// Mode selects round-keyed (DiemBFT) or height-keyed (Streamlet)
	// endorsements.
	Mode Mode
	// Naive, when set, counts every indirect vote as an endorsement
	// regardless of markers — the UNSAFE strawman of Appendix C, kept so
	// the counter-example can be demonstrated.
	Naive bool
	// Horizon bounds how many ancestors one QC's votes are walked over.
	// 0 means unlimited. Experiments use ~2N+16 so that Theorem 2/3
	// accumulation (n+2 rounds) is never clipped while long chains stay
	// cheap — the paper's "marginal bookkeeping overhead".
	Horizon int
	// OnStrength, if non-nil, is invoked every time a block's strong-commit
	// level rises, with the new level x (the commit tolerates x Byzantine
	// faults). It fires for the directly committed block and for every
	// ancestor whose level rises with it.
	OnStrength func(b *types.Block, x int)
}

// Tracker performs the SFT endorsement bookkeeping for one replica. Feed it
// every QC the replica observes (block justify QCs, locally formed QCs,
// QCs inside timeouts); it maintains endorser sets per block and detects
// strong commits by the strong 3-chain rule.
//
// Not safe for concurrent use; the owning engine serializes events.
type Tracker struct {
	store *blockstore.Store
	cfg   Config

	// endorsed[b] = per-voter endorsement keys for block b (round or height
	// per mode); unconditional (0) for direct votes. In ModeRound the stored
	// key doubles as the marker-coverage key (see OnQC). Inner sets are flat
	// bitset+array structures, not maps — see endorserSet.
	endorsed map[types.BlockID]*endorserSet

	// strength[b] = highest x such that b is x-strong committed here.
	// Missing means not strong committed at all (not even f-strong).
	strength map[types.BlockID]int

	// processed[b] = number of votes already unpacked from a QC for b, so
	// re-deliveries and smaller duplicate QCs are skipped cheaply.
	processed map[types.BlockID]int

	// changed and candidates are reused per-OnQC scratch buffers for the
	// grew-this-QC block set and the 3-chain re-evaluation worklist.
	changed    []*types.Block
	candidates []*types.Block
}

// NewTracker creates a tracker over the replica's block store.
func NewTracker(store *blockstore.Store, cfg Config) *Tracker {
	if cfg.Mode == 0 {
		cfg.Mode = ModeRound
	}
	return &Tracker{
		store:     store,
		cfg:       cfg,
		endorsed:  make(map[types.BlockID]*endorserSet),
		strength:  make(map[types.BlockID]int),
		processed: make(map[types.BlockID]int),
	}
}

// OnQC unpacks a (strong-)QC into endorsements and re-evaluates the strong
// 3-chain rule around every block whose endorser set grew. The certified
// block must already be in the store.
func (t *Tracker) OnQC(qc *types.QC) {
	if len(qc.Votes) <= t.processed[qc.Block] {
		return // already unpacked an equal or larger QC for this block
	}
	t.processed[qc.Block] = len(qc.Votes)
	certified := t.store.Block(qc.Block)
	if certified == nil {
		return
	}
	t.changed = t.changed[:0]
	for i := range qc.Votes {
		v := &qc.Votes[i]
		// In plain marker mode (the common case) the stored key doubles as
		// a COVERAGE key: an entry with key m at block B means this voter's
		// endorsements with marker m have already been propagated to B's
		// whole ancestor chain (to the horizon). A later walk carrying a
		// marker >= m can therefore stop at B: it cannot add anything
		// deeper. This makes steady-state bookkeeping O(1) per vote — the
		// paper's "marginal overhead". The optimization is disabled for
		// interval votes (gapped sets do not give downward coverage) and
		// in ModeHeight (keys are threshold inputs there).
		markerCoverage := t.cfg.Mode == ModeRound && !t.cfg.Naive && !v.HasIntervals
		directKey := unconditional
		if markerCoverage {
			directKey = uint64(v.Marker)
		}
		// Direct vote: endorses its own block unconditionally.
		if t.addEndorsement(qc.Block, v.Voter, directKey) {
			t.noteChanged(certified)
		} else if markerCoverage {
			continue // already covered at or below this marker
		}
		// Indirect: walk ancestors applying the marker/interval rule.
		depth := 0
		t.store.WalkAncestors(qc.Block, func(anc *types.Block) bool {
			depth++
			if t.cfg.Horizon > 0 && depth > t.cfg.Horizon {
				return false
			}
			if anc.IsGenesis() {
				return false
			}
			key, ok := t.voteKey(v, anc)
			if !ok {
				// Marker mode and marker >= round: deeper ancestors have
				// strictly smaller rounds, so nothing further is endorsed.
				// Interval mode cannot early-exit (sets may have gaps).
				return v.HasIntervals
			}
			if markerCoverage {
				key = uint64(v.Marker)
			}
			if t.addEndorsement(anc.ID(), v.Voter, key) {
				t.noteChanged(anc)
				return true
			}
			// Already endorsed with an equal-or-lower coverage key:
			// everything deeper is covered too.
			return !markerCoverage
		})
	}
	// Detach the scratch before iterating: OnStrength is a public callback,
	// and if it feeds another QC back into the tracker the nested OnQC must
	// not clobber the worklist we are still walking. The nested call simply
	// allocates fresh scratch; the steady (non-reentrant) path stays
	// allocation-free because the buffer is reattached afterwards.
	changed := t.changed
	t.changed = nil
	for _, b := range changed {
		t.reevaluateAround(b)
	}
	t.changed = changed[:0]
}

// noteChanged appends b to the changed worklist unless already present.
// Store blocks are unique pointers, so identity comparison suffices; the
// list stays short (bounded by the walk horizon), keeping the linear dedup
// cheaper than a per-OnQC map.
func (t *Tracker) noteChanged(b *types.Block) {
	for _, c := range t.changed {
		if c == b {
			return
		}
	}
	t.changed = append(t.changed, b)
}

// voteKey returns the key to store for v's endorsement of ancestor anc, and
// whether the vote endorses anc at all.
func (t *Tracker) voteKey(v *types.Vote, anc *types.Block) (uint64, bool) {
	if t.cfg.Naive {
		// Appendix C strawman: any indirect vote counts.
		return unconditional, true
	}
	switch t.cfg.Mode {
	case ModeHeight:
		// Streamlet: record the height marker; whether it endorses depends
		// on the commit threshold k, resolved at evaluation time. A marker
		// at or above the ancestor's own height can still k-endorse for a
		// larger k, so everything is recorded.
		return uint64(v.Marker), true
	default:
		// DiemBFT: key is the ancestor's round; endorsement is immediate.
		if v.HasIntervals {
			if v.Intervals.Contains(uint64(anc.Round)) {
				return unconditional, true
			}
			return 0, false
		}
		if v.Marker < anc.Round {
			return unconditional, true
		}
		return 0, false
	}
}

// addEndorsement records that voter endorses block above the given key,
// keeping the minimum key seen. It reports whether the record improved.
func (t *Tracker) addEndorsement(block types.BlockID, voter types.ReplicaID, key uint64) bool {
	s, ok := t.endorsed[block]
	if !ok {
		s = newEndorserSet(t.cfg.N)
		t.endorsed[block] = s
	}
	return s.add(voter, key)
}

// Endorsers returns the number of endorsers of the block. In ModeRound this
// is the paper's |endorsers| directly; in ModeHeight it is the count of
// voters whose marker permits k-endorsement at the block's own height.
func (t *Tracker) Endorsers(id types.BlockID) int {
	switch t.cfg.Mode {
	case ModeHeight:
		b := t.store.Block(id)
		if b == nil {
			return 0
		}
		return t.EndorsersAt(id, uint64(b.Height))
	default:
		return t.endorsed[id].size()
	}
}

// EndorsersAt returns the number of voters k-endorsing the block for
// threshold key k (ModeHeight only; in ModeRound every stored entry already
// passed its check, so the threshold is ignored except for direct votes).
func (t *Tracker) EndorsersAt(id types.BlockID, k uint64) int {
	return t.endorsed[id].countBelow(k)
}

// Strength returns the highest x such that the block is x-strong committed
// at this replica, or -1 if it is not strong committed at all.
func (t *Tracker) Strength(id types.BlockID) int {
	if x, ok := t.strength[id]; ok {
		return x
	}
	return -1
}

// reevaluateAround re-runs the strong 3-chain rule for every 3-chain that
// includes b (as first, middle, or last element).
func (t *Tracker) reevaluateAround(b *types.Block) {
	// b as the start/middle/end of a 3-chain maps to candidate commit
	// blocks: in ModeRound the committed block is the FIRST of the 3-chain
	// (B_k, B_k+1, B_k+2); in ModeHeight it is the MIDDLE (B_k-1, B_k,
	// B_k+1). Evaluate every candidate whose window could include b.
	cands := append(t.candidates[:0], b)
	t.candidates = nil // detach; see OnQC's reentrancy note
	if p := t.store.Parent(b.ID()); p != nil {
		cands = append(cands, p)
		if gp := t.store.Parent(p.ID()); gp != nil {
			cands = append(cands, gp)
		}
	}
	t.store.VisitChildren(b.ID(), func(c *types.Block) bool {
		cands = append(cands, c)
		// In ModeHeight the middle block can be a grandchild's parent; the
		// child's own evaluation covers it via its window.
		return true
	})
	for _, c := range cands {
		t.evaluate(c)
	}
	t.candidates = cands[:0]
}

// evaluate applies the strong commit rule with candidate as the committed
// block and raises strength levels if a higher x is now supported.
func (t *Tracker) evaluate(candidate *types.Block) {
	var x int
	switch t.cfg.Mode {
	case ModeHeight:
		x = t.evaluateHeight(candidate)
	default:
		x = t.evaluateRound(candidate)
	}
	if x < t.cfg.F {
		return // not even a regular commit yet
	}
	t.raise(candidate, x)
}

// evaluateRound computes the best x for SFT-DiemBFT's strong 3-chain rule:
// candidate B_k plus chain successors with rounds r+1 and r+2, each with at
// least x+f+1 endorsers.
func (t *Tracker) evaluateRound(bk *types.Block) int {
	best := -1
	t.store.VisitChildren(bk.ID(), func(b1 *types.Block) bool {
		if b1.Round != bk.Round+1 {
			return true
		}
		t.store.VisitChildren(b1.ID(), func(b2 *types.Block) bool {
			if b2.Round != bk.Round+2 {
				return true
			}
			e := min(t.Endorsers(bk.ID()), t.Endorsers(b1.ID()), t.Endorsers(b2.ID()))
			if x := e - t.cfg.F - 1; x > best {
				best = x
			}
			return true
		})
		return true
	})
	return best
}

// evaluateHeight computes the best x for SFT-Streamlet's rule: candidate
// B_k (height k) with neighbors B_k-1 and B_k+1 forming consecutive rounds,
// each with at least x+f+1 k-endorsers.
func (t *Tracker) evaluateHeight(bk *types.Block) int {
	prev := t.store.Parent(bk.ID())
	if prev == nil || bk.Round != prev.Round+1 {
		return -1
	}
	k := uint64(bk.Height)
	best := -1
	t.store.VisitChildren(bk.ID(), func(next *types.Block) bool {
		if next.Round != bk.Round+1 {
			return true
		}
		e := min(
			t.EndorsersAt(prev.ID(), k),
			t.EndorsersAt(bk.ID(), k),
			t.EndorsersAt(next.ID(), k),
		)
		if x := e - t.cfg.F - 1; x > best {
			best = x
		}
		return true
	})
	return best
}

// raise lifts the strength of b to at least x and propagates to ancestors
// ("commits a block B_k and all its ancestors"), emitting OnStrength for
// every block whose level rises.
func (t *Tracker) raise(b *types.Block, x int) {
	for cur := b; cur != nil && !cur.IsGenesis(); cur = t.store.Parent(cur.ID()) {
		old, ok := t.strength[cur.ID()]
		if ok && old >= x {
			return // ancestors below are already at or above x
		}
		t.strength[cur.ID()] = x
		if t.cfg.OnStrength != nil {
			t.cfg.OnStrength(cur, x)
		}
	}
}

// Restore rebuilds endorsement state by re-unpacking recovered certificates
// in order. The caller typically mutes its OnStrength callback during
// recovery (levels reached pre-crash are being reinstated, not newly
// observed); the blocks the QCs certify must already be back in the store.
func (t *Tracker) Restore(qcs []*types.QC) {
	for _, qc := range qcs {
		if qc != nil {
			t.OnQC(qc)
		}
	}
}

// Forget releases bookkeeping for blocks below the given height; pair with
// blockstore pruning on long runs.
func (t *Tracker) Forget(below types.Height) {
	for id := range t.endorsed {
		if b := t.store.Block(id); b == nil || b.Height < below {
			delete(t.endorsed, id)
			delete(t.processed, id)
			delete(t.strength, id)
		}
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intervals"
	"repro/internal/types"
)

// TestDefinition1PropertyIntervalVotes repeats the Definition 1 fuzz with
// Section 3.4 generalized interval votes: honest voters compute truthful
// interval sets (I = [1, r] minus the per-fork exclusion intervals),
// Byzantine voters claim full intervals. Safety must hold for every random
// fork schedule.
func TestDefinition1PropertyIntervalVotes(t *testing.T) {
	const f = 2
	const n = 3*f + 1
	const byzCount = f + 1

	for seed := int64(0); seed < 30; seed++ {
		w := newWorld(t)
		tr := core.NewTracker(w.store, core.Config{N: n, F: f, Mode: core.ModeRound})
		histories := make([]*core.VoteHistory, n)
		for i := range histories {
			histories[i] = core.NewVoteHistory(w.store)
		}
		rng := newRand(seed)
		lastVoted := make(map[types.ReplicaID]types.Round)

		blocks := []*types.Block{w.store.Genesis()}
		for round := types.Round(1); round <= 24; round++ {
			parent := blocks[rng.Intn(len(blocks))]
			if parent.Round >= round {
				continue
			}
			b := w.mk(parent, round)
			blocks = append(blocks, b)
			var votes []types.Vote
			for v := types.ReplicaID(0); int(v) < n; v++ {
				honest := int(v) < n-byzCount
				if honest && lastVoted[v] >= round {
					continue
				}
				if rng.Intn(4) == 0 {
					continue
				}
				vote := types.Vote{
					Block: b.ID(), Round: round, Height: b.Height, Voter: v,
					HasIntervals: true,
				}
				if honest {
					vote.Intervals = histories[v].Intervals(b, 0)
					histories[v].RecordVote(b)
					lastVoted[v] = round
				} else {
					// Byzantine: lie maximally.
					vote.Intervals = intervals.Full(uint64(round))
				}
				votes = append(votes, vote)
			}
			if len(votes) < 2*f+1 {
				continue
			}
			tr.OnQC(&types.QC{Block: b.ID(), Round: round, Height: b.Height, Votes: votes})
		}

		for i := 1; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				a, b := blocks[i], blocks[j]
				if !w.store.Conflicts(a.ID(), b.ID()) {
					continue
				}
				xa, xb := tr.Strength(a.ID()), tr.Strength(b.ID())
				if xa < 0 || xb < 0 {
					continue
				}
				if min(xa, xb) >= byzCount {
					t.Fatalf("seed %d: conflicting %v (x=%d) and %v (x=%d) with %d Byzantine",
						seed, a, xa, b, xb, byzCount)
				}
			}
		}
	}
}

// TestIntervalVotesEndorseAtLeastMarkerVotes: for identical histories, the
// interval vote endorses a superset of what the single-marker vote
// endorses — the paper's claim that richer votes only improve liveness,
// never change safety.
func TestIntervalVotesEndorseAtLeastMarkerVotes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		w := newWorld(t)
		h := core.NewVoteHistory(w.store)
		rng := newRand(seed + 100)

		blocks := []*types.Block{w.store.Genesis()}
		var lastVote types.Round
		for round := types.Round(1); round <= 16; round++ {
			parent := blocks[rng.Intn(len(blocks))]
			if parent.Round >= round {
				continue
			}
			b := w.mk(parent, round)
			blocks = append(blocks, b)
			if round > lastVote && rng.Intn(3) > 0 {
				h.RecordVote(b)
				lastVote = round
			}
		}
		tip := blocks[len(blocks)-1]
		marker := h.Marker(tip)
		set := h.Intervals(tip, 0)
		for r := types.Round(1); r <= tip.Round; r++ {
			markerEndorses := marker < r
			if markerEndorses && !set.Contains(uint64(r)) {
				t.Fatalf("seed %d: marker %d endorses round %d but interval %s does not",
					seed, marker, r, set)
			}
		}
	}
}

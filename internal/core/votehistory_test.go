package core_test

import (
	"testing"

	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/types"
)

// world bundles a store with helpers for hand-building forks.
type world struct {
	t     *testing.T
	store *blockstore.Store
	seq   uint32
}

func newWorld(t *testing.T) *world {
	return &world{t: t, store: blockstore.New()}
}

func (w *world) mk(parent *types.Block, round types.Round) *types.Block {
	w.t.Helper()
	w.seq++
	b := types.NewBlock(parent.ID(), types.NewGenesisQC(parent.ID()), round, parent.Height+1, 0,
		int64(w.seq), types.Payload{Txns: []types.Transaction{{Sender: w.seq}}}, nil)
	if err := w.store.Insert(b); err != nil {
		w.t.Fatalf("insert: %v", err)
	}
	return b
}

func TestMarkerNoForks(t *testing.T) {
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()

	cur := g
	for r := types.Round(1); r <= 5; r++ {
		cur = w.mk(cur, r)
		if m := h.Marker(cur); m != 0 {
			t.Errorf("round %d: marker = %d on a forkless chain, want 0", r, m)
		}
		h.RecordVote(cur)
	}
}

func TestMarkerAfterForkSwitch(t *testing.T) {
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()

	// Vote a1 (r1), then fork block b1 (r2) extending genesis, then switch
	// back to a-branch with a2 (r3) extending a1.
	a1 := w.mk(g, 1)
	h.RecordVote(a1)
	b1 := w.mk(g, 2)
	h.RecordVote(b1)
	a2 := w.mk(a1, 3)

	// a2 conflicts with b1 (round 2): marker must be 2.
	if m := h.Marker(a2); m != 2 {
		t.Fatalf("marker = %d, want 2", m)
	}
	h.RecordVote(a2)

	// Deeper on the a-branch the marker stays 2 (b1 is still the highest
	// conflicting voted block).
	a3 := w.mk(a2, 4)
	if m := h.Marker(a3); m != 2 {
		t.Fatalf("marker = %d, want 2", m)
	}

	// Now a block extending b1: conflicts with a1, a2 (rounds 1, 3).
	b2 := w.mk(b1, 5)
	if m := h.Marker(b2); m != 3 {
		t.Fatalf("marker on b-branch = %d, want 3", m)
	}
}

func TestHeightMarker(t *testing.T) {
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()

	a1 := w.mk(g, 1) // height 1
	a2 := w.mk(a1, 2)
	a3 := w.mk(a2, 3) // height 3
	h.RecordVote(a1)
	h.RecordVote(a2)
	h.RecordVote(a3)

	b1 := w.mk(g, 4) // conflicting branch
	if m := h.HeightMarker(b1); m != 3 {
		t.Fatalf("height marker = %d, want 3", m)
	}
	if m := h.Marker(b1); m != 3 {
		t.Fatalf("round marker = %d, want 3", m)
	}
}

func TestIntervalsSingleFork(t *testing.T) {
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()

	// Chain a1(r1) a2(r2); fork f1(r3) extends a1; back on main with
	// a3(r5) extending a2.
	a1 := w.mk(g, 1)
	a2 := w.mk(a1, 2)
	h.RecordVote(a1)
	h.RecordVote(a2)
	f1 := w.mk(a1, 3)
	h.RecordVote(f1)
	a3 := w.mk(a2, 5)

	// D_F = [common(f1,a3).round+1, 3] = [2, 3]; I = [1,5] \ [2,3]... the
	// common ancestor of f1 and a3 is a1 (round 1), so D_F = [2,3].
	set := h.Intervals(a3, 0)
	wantIn := []uint64{1, 4, 5}
	wantOut := []uint64{2, 3}
	for _, v := range wantIn {
		if !set.Contains(v) {
			t.Errorf("interval %s should contain %d", set, v)
		}
	}
	for _, v := range wantOut {
		if set.Contains(v) {
			t.Errorf("interval %s should exclude %d", set, v)
		}
	}

	// The single-marker summary would be [4,5]: strictly less precise.
	if set.Count() <= 2 {
		t.Errorf("interval vote lost precision: %s", set)
	}
}

func TestIntervalsWindowClipping(t *testing.T) {
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()

	cur := g
	for r := types.Round(1); r <= 20; r++ {
		cur = w.mk(cur, r)
		h.RecordVote(cur)
	}
	tip := w.mk(cur, 21)
	set := h.Intervals(tip, 5)
	if set.Contains(10) {
		t.Errorf("window-clipped set %s contains round 10", set)
	}
	if !set.Contains(18) || !set.Contains(21) {
		t.Errorf("window-clipped set %s lost recent rounds", set)
	}
}

func TestIntervalsMatchMarkerSemantics(t *testing.T) {
	// On any history, the interval set must be a superset of the marker
	// interval (markers are the coarsest summary): every round the marker
	// endorses, the interval set endorses too.
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()

	a1 := w.mk(g, 1)
	h.RecordVote(a1)
	b1 := w.mk(g, 2)
	h.RecordVote(b1)
	a2 := w.mk(a1, 3)
	h.RecordVote(a2)
	b2 := w.mk(b1, 4)
	h.RecordVote(b2)
	a3 := w.mk(a2, 5)

	marker := h.Marker(a3)
	set := h.Intervals(a3, 0)
	for r := marker + 1; r <= 5; r++ {
		if !set.Contains(uint64(r)) {
			t.Errorf("round %d endorsed by marker %d but not by %s", r, marker, set)
		}
	}
}

func TestVoteHistoryPrune(t *testing.T) {
	w := newWorld(t)
	h := core.NewVoteHistory(w.store)
	g := w.store.Genesis()
	cur := g
	for r := types.Round(1); r <= 10; r++ {
		cur = w.mk(cur, r)
		h.RecordVote(cur)
	}
	if h.Len() != 10 {
		t.Fatalf("history len = %d", h.Len())
	}
	h.PruneBelow(6)
	if h.Len() != 5 {
		t.Fatalf("after prune len = %d, want 5", h.Len())
	}
	for _, v := range h.Voted() {
		if v.Round < 6 {
			t.Errorf("pruned entry r%d survived", v.Round)
		}
	}
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

// TestAppendixCCounterExample replays the paper's Figure 9 script (f = 2,
// f+1 Byzantine replicas) against both endorsement-counting modes and
// checks:
//
//   - naive counting (every indirect vote counts) produces TWO conflicting
//     (f+1)-strong commits — the safety violation the appendix constructs;
//   - marker-based counting keeps branch A at f-strong, so Definition 1
//     holds (only one branch reaches (f+1)-strong under t = f+1 faults).
func TestAppendixCCounterExample(t *testing.T) {
	const f = 2
	const n = 3*f + 1
	h := []types.ReplicaID{0, 1, 2, 3} // h1..h4 honest
	byz := []types.ReplicaID{4, 5, 6}  // b1..b3 Byzantine

	type branch struct {
		main *types.Block // B_r
		fork *types.Block // B'_{r+4}
	}

	play := func(naive bool) (*core.Tracker, branch) {
		w := newWorld(t)
		tr := core.NewTracker(w.store, core.Config{N: n, F: f, Mode: core.ModeRound, Naive: naive})
		voted := make(map[types.ReplicaID][]*types.Block)

		marker := func(voter types.ReplicaID, target *types.Block, lie bool) types.Round {
			if lie {
				return 0
			}
			var m types.Round
			for _, b := range voted[voter] {
				if w.store.Conflicts(b.ID(), target.ID()) && b.Round > m {
					m = b.Round
				}
			}
			return m
		}
		qc := func(b *types.Block, honest, lying []types.ReplicaID) *types.QC {
			var votes []types.Vote
			for _, v := range honest {
				votes = append(votes, types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height,
					Voter: v, Marker: marker(v, b, false)})
				voted[v] = append(voted[v], b)
			}
			for _, v := range lying {
				votes = append(votes, types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height,
					Voter: v, Marker: 0})
				voted[v] = append(voted[v], b)
			}
			return &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
		}

		g := w.store.Genesis()
		brm1 := w.mk(g, 4) // B_{r-1}, r = 5
		tr.OnQC(qc(brm1, h, byz[:1]))

		br := w.mk(brm1, 5) // B_r
		tr.OnQC(qc(br, h[:2], byz))

		ba1 := w.mk(br, 6) // B_{r+1}
		tr.OnQC(qc(ba1, h[:2], byz))
		bp1 := w.mk(brm1, 6) // B'_{r+1}: the equivocation
		tr.OnQC(qc(bp1, h[2:], byz))

		ba2 := w.mk(ba1, 7) // B_{r+2}: h3 switches over, 2f+2 votes
		tr.OnQC(qc(ba2, h[:3], byz))

		bb4 := w.mk(bp1, 9) // B'_{r+4}: branch B revived
		tr.OnQC(qc(bb4, h[2:], byz))
		bb5 := w.mk(bb4, 10)
		tr.OnQC(qc(bb5, h[1:], byz))
		bb6 := w.mk(bb5, 11)
		tr.OnQC(qc(bb6, h[1:], byz))
		bb7 := w.mk(bb6, 12)
		tr.OnQC(qc(bb7, h[1:], byz))

		return tr, branch{main: br, fork: bb4}
	}

	// Naive mode: both branches reach (f+1)-strong — safety violated.
	naiveTr, nb := play(true)
	a := naiveTr.Strength(nb.main.ID())
	b := naiveTr.Strength(nb.fork.ID())
	if a < f+1 || b < f+1 {
		t.Fatalf("naive counting should show the violation: branch A=%d, branch B=%d, want both >= %d", a, b, f+1)
	}

	// Marker mode: branch A stays at f-strong; only one (f+1)-strong branch.
	sftTr, sb := play(false)
	a = sftTr.Strength(sb.main.ID())
	b = sftTr.Strength(sb.fork.ID())
	if a != f {
		t.Errorf("marker mode branch A strength = %d, want exactly f=%d", a, f)
	}
	if b != f+1 {
		t.Errorf("marker mode branch B strength = %d, want f+1=%d", b, f+1)
	}
	if a >= f+1 && b >= f+1 {
		t.Fatal("marker mode violated Definition 1")
	}
}

// TestDefinition1Property fuzzes random fork/vote schedules (honest voters
// report truthful markers, Byzantine voters lie) and asserts the paper's
// safety property on every outcome: for any two conflicting blocks with
// strengths x <= x', the number of Byzantine voters must exceed x.
func TestDefinition1Property(t *testing.T) {
	const f = 2
	const n = 3*f + 1
	const byzCount = f + 1 // t = f+1 Byzantine replicas

	for seed := int64(0); seed < 30; seed++ {
		w := newWorld(t)
		tr := core.NewTracker(w.store, core.Config{N: n, F: f, Mode: core.ModeRound})
		voted := make(map[types.ReplicaID][]*types.Block)
		rng := newRand(seed)

		marker := func(voter types.ReplicaID, target *types.Block) types.Round {
			if int(voter) >= n-byzCount {
				return 0 // Byzantine: always lie low
			}
			var m types.Round
			for _, b := range voted[voter] {
				if w.store.Conflicts(b.ID(), target.ID()) && b.Round > m {
					m = b.Round
				}
			}
			return m
		}

		// honestCanVote enforces the protocol's one-vote-per-round rule for
		// honest replicas (Byzantine ignore it).
		lastVoted := make(map[types.ReplicaID]types.Round)

		blocks := []*types.Block{w.store.Genesis()}
		for round := types.Round(1); round <= 24; round++ {
			parent := blocks[rng.Intn(len(blocks))]
			if parent.Round >= round {
				continue
			}
			b := w.mk(parent, round)
			blocks = append(blocks, b)
			// Random voter subset of size >= 2f+1.
			var votes []types.Vote
			for v := types.ReplicaID(0); int(v) < n; v++ {
				honest := int(v) < n-byzCount
				if honest && lastVoted[v] >= round {
					continue
				}
				if rng.Intn(4) == 0 { // some replicas miss the round
					continue
				}
				votes = append(votes, types.Vote{Block: b.ID(), Round: round, Height: b.Height,
					Voter: v, Marker: marker(v, b)})
				voted[v] = append(voted[v], b)
				if honest {
					lastVoted[v] = round
				}
			}
			if len(votes) < 2*f+1 {
				continue // no QC this round
			}
			tr.OnQC(&types.QC{Block: b.ID(), Round: round, Height: b.Height, Votes: votes})
		}

		// Definition 1 check over all conflicting pairs.
		for i := 1; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				a, b := blocks[i], blocks[j]
				if !w.store.Conflicts(a.ID(), b.ID()) {
					continue
				}
				xa, xb := tr.Strength(a.ID()), tr.Strength(b.ID())
				if xa < 0 || xb < 0 {
					continue
				}
				lo := min(xa, xb)
				if lo >= byzCount {
					t.Fatalf("seed %d: conflicting blocks %v (x=%d) and %v (x=%d) both strong committed with only %d Byzantine",
						seed, a, xa, b, xb, byzCount)
				}
			}
		}
	}
}

package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

// newRand is a tiny helper so fuzz-style tests share a deterministic source.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDirectTrackerStrongCommit(t *testing.T) {
	w := newWorld(t)
	var events []int
	tr := core.NewDirectTracker(w.store, 1, func(b *types.Block, x int) {
		events = append(events, x)
	})
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	b3 := w.mk(b2, 3)

	for _, b := range []*types.Block{b1, b2, b3} {
		tr.OnQC(qcFor(b, sameMarkers(0, 0, 1, 2)))
	}
	if got := tr.Strength(b1.ID()); got != 1 {
		t.Fatalf("strength = %d, want f=1", got)
	}

	// Late direct votes (the FBFT ExtraVote path) raise the level; markers
	// play no role in the baseline.
	tr.AddVote(b1.ID(), 3)
	tr.AddVote(b2.ID(), 3)
	tr.AddVote(b3.ID(), 3)
	if got := tr.Strength(b1.ID()); got != 2 {
		t.Fatalf("strength after extra votes = %d, want 2f=2", got)
	}
	if len(events) < 2 {
		t.Fatalf("events = %v", events)
	}
}

func TestDirectTrackerNoIndirectCredit(t *testing.T) {
	// Unlike the SFT tracker, a QC for a descendant must NOT credit
	// ancestors: the baseline counts direct votes only.
	w := newWorld(t)
	tr := core.NewDirectTracker(w.store, 1, nil)
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)

	tr.OnQC(qcFor(b2, sameMarkers(0, 0, 1, 2, 3)))
	if got := tr.DirectVotes(b1.ID()); got != 0 {
		t.Fatalf("ancestor got %d direct votes from a descendant QC", got)
	}
	if got := tr.DirectVotes(b2.ID()); got != 4 {
		t.Fatalf("block direct votes = %d", got)
	}
}

func TestDirectTrackerDuplicateVotes(t *testing.T) {
	w := newWorld(t)
	tr := core.NewDirectTracker(w.store, 1, nil)
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	tr.AddVote(b1.ID(), 2)
	tr.AddVote(b1.ID(), 2)
	if got := tr.DirectVotes(b1.ID()); got != 1 {
		t.Fatalf("duplicate vote counted: %d", got)
	}
}

func TestDirectTrackerForget(t *testing.T) {
	w := newWorld(t)
	tr := core.NewDirectTracker(w.store, 1, nil)
	g := w.store.Genesis()
	b1 := w.mk(g, 1)
	b2 := w.mk(b1, 2)
	tr.AddVote(b1.ID(), 0)
	tr.AddVote(b2.ID(), 0)
	tr.Forget(2)
	if tr.DirectVotes(b1.ID()) != 0 || tr.DirectVotes(b2.ID()) != 1 {
		t.Fatal("forget boundary wrong")
	}
}

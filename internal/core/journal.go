package core

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/wal"
)

// The journal is the replica-level schema over the write-ahead log
// (internal/wal): the records a replica's safety depends on, serialized with
// the pinned types encodings (internal/types/wire.go). A replica rebuilt by
// Recover reaches a state whose next vote cannot contradict its pre-crash
// markers: every block it accepted, every vote it cast, every certificate it
// registered outside a block, its lock round, and its committed prefix are
// all replayable in original order.
//
// Durability contract (see also the package comment of internal/wal): the
// engines append records while processing an event and Flush the batch
// before the event's outputs are handed to the network — in particular, a
// strong-vote never leaves the replica before the vote record (and the
// record of the block it endorses) is flushed. One event, one fsync batch.

// Journal record types.
const (
	// RecBlock is a block accepted into the replica's store (full pinned
	// encoding; the embedded justify QC certifies its parent).
	RecBlock wal.RecordType = iota + 1
	// RecVote is a strong-vote this replica cast. Replay rebuilds the
	// VoteHistory and the highest-voted round from these.
	RecVote
	// RecQC is a certificate registered from something other than an
	// accepted block's justify (a locally formed QC, a timeout's high QC):
	// certificates arriving inside blocks are already durable via RecBlock.
	RecQC
	// RecLock is the locked round after a 2-chain lock advance (8 bytes).
	RecLock
	// RecCommit marks a block committed: id + height + round.
	RecCommit
)

// Journal wraps a WAL with typed appenders for the consensus records. The
// encoding scratch buffer is reused, so steady-state appends on the vote
// path are allocation-free. Not safe for concurrent use; the owning engine
// serializes events.
type Journal struct {
	log     *wal.Log
	scratch []byte
}

// NewJournal wraps an opened log.
func NewJournal(l *wal.Log) *Journal {
	return &Journal{log: l, scratch: make([]byte, 0, 4096)}
}

// Log exposes the underlying WAL (stats, tests).
func (j *Journal) Log() *wal.Log { return j.log }

// AppendBlock stages a block record.
func (j *Journal) AppendBlock(b *types.Block) error {
	j.scratch = b.AppendEncoding(j.scratch[:0])
	return j.log.Append(RecBlock, j.scratch)
}

// AppendVote stages a record of an own cast vote.
func (j *Journal) AppendVote(v *types.Vote) error {
	j.scratch = v.Encode(j.scratch[:0])
	return j.log.Append(RecVote, j.scratch)
}

// AppendQC stages a certificate that did not arrive inside a block.
func (j *Journal) AppendQC(qc *types.QC) error {
	j.scratch = qc.Encode(j.scratch[:0])
	return j.log.Append(RecQC, j.scratch)
}

// AppendLock stages the new locked round.
func (j *Journal) AppendLock(r types.Round) error {
	j.scratch = types.AppendUint64(j.scratch[:0], uint64(r))
	return j.log.Append(RecLock, j.scratch)
}

// AppendCommit stages a commit marker.
func (j *Journal) AppendCommit(id types.BlockID, h types.Height, r types.Round) error {
	j.scratch = append(j.scratch[:0], id[:]...)
	j.scratch = types.AppendUint64(j.scratch, uint64(h))
	j.scratch = types.AppendUint64(j.scratch, uint64(r))
	return j.log.Append(RecCommit, j.scratch)
}

// Dirty reports whether staged records await a Flush.
func (j *Journal) Dirty() bool { return j.log.Dirty() }

// Flush makes every staged record durable (one fsync for the batch, per the
// log's sync options).
func (j *Journal) Flush() error { return j.log.Flush() }

// Close flushes with a forced fsync and closes the log; the graceful
// shutdown path (runtime.Node) calls it so buffered appends are never
// dropped on the floor.
func (j *Journal) Close() error { return j.log.Close() }

// Recovery is the durable state replayed from a journal, in a form the
// engines' Restore hooks consume directly.
type Recovery struct {
	// Blocks are the accepted blocks in original insertion order (parents
	// before children, since acceptance required the parent present).
	Blocks []*types.Block
	// Votes are the replica's own cast votes, oldest first.
	Votes []types.Vote
	// QCs are the standalone certificates in append order.
	QCs []*types.QC
	// Locked is the highest recorded lock round.
	Locked types.Round
	// HighQC is the highest-ranked certificate seen anywhere in the log
	// (standalone records and block justifies), or nil for a fresh log.
	HighQC *types.QC
	// Committed is the last recorded committed block.
	Committed       types.BlockID
	CommittedHeight types.Height
	CommittedRound  types.Round
}

// VotedRound returns the highest round among the replayed own votes.
func (r *Recovery) VotedRound() types.Round {
	var max types.Round
	for i := range r.Votes {
		if r.Votes[i].Round > max {
			max = r.Votes[i].Round
		}
	}
	return max
}

// Empty reports whether the journal held no records (a fresh replica).
func (r *Recovery) Empty() bool {
	return len(r.Blocks) == 0 && len(r.Votes) == 0 && len(r.QCs) == 0 &&
		r.Locked == 0 && r.HighQC == nil && r.CommittedHeight == 0
}

// Recover replays a journal's log into a Recovery. It decodes every record
// with the pinned types decoders; a record that fails to decode is a
// corruption of safety-critical state and aborts recovery.
func Recover(l *wal.Log) (*Recovery, error) {
	rec := &Recovery{}
	noteQC := func(qc *types.QC) {
		if qc != nil && qc.RanksHigher(rec.HighQC) {
			rec.HighQC = qc
		}
	}
	err := l.Replay(func(rt wal.RecordType, payload []byte) error {
		switch rt {
		case RecBlock:
			b, rest, err := types.DecodeBlock(payload)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("core: recover block record: %w", badRecord(err, rest))
			}
			rec.Blocks = append(rec.Blocks, b)
			noteQC(b.Justify)
		case RecVote:
			v, rest, err := types.DecodeVote(payload)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("core: recover vote record: %w", badRecord(err, rest))
			}
			rec.Votes = append(rec.Votes, v)
		case RecQC:
			qc, rest, err := types.DecodeQC(payload)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("core: recover qc record: %w", badRecord(err, rest))
			}
			rec.QCs = append(rec.QCs, qc)
			noteQC(qc)
		case RecLock:
			r, rest, err := types.ConsumeUint64(payload)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("core: recover lock record: %w", badRecord(err, rest))
			}
			if types.Round(r) > rec.Locked {
				rec.Locked = types.Round(r)
			}
		case RecCommit:
			if len(payload) != 32+8+8 {
				return fmt.Errorf("core: recover commit record: %d bytes", len(payload))
			}
			var id types.BlockID
			copy(id[:], payload)
			h, rest, _ := types.ConsumeUint64(payload[32:])
			r, _, _ := types.ConsumeUint64(rest)
			// Commits are logged in height order; keep the highest.
			if types.Height(h) >= rec.CommittedHeight {
				rec.Committed = id
				rec.CommittedHeight = types.Height(h)
				rec.CommittedRound = types.Round(r)
			}
		default:
			return fmt.Errorf("core: unknown journal record type %d", rt)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

func badRecord(err error, rest []byte) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("%d trailing bytes", len(rest))
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

func vs(voter types.ReplicaID) types.Vote {
	return types.Vote{Round: 3, Voter: voter}
}

func TestVoteSetAddDedupAndOrder(t *testing.T) {
	var s core.VoteSet
	for _, v := range []types.ReplicaID{5, 1, 70, 3} {
		if !s.Add(vs(v)) {
			t.Fatalf("fresh vote from %v rejected", v)
		}
	}
	if s.Add(vs(5)) {
		t.Fatal("duplicate voter accepted")
	}
	if s.Len() != 4 || s.Count() != 4 {
		t.Fatalf("len=%d count=%d, want 4/4", s.Len(), s.Count())
	}
	for _, v := range []types.ReplicaID{1, 3, 5, 70} {
		if !s.Has(v) {
			t.Fatalf("Has(%v) = false", v)
		}
	}
	if s.Has(2) || s.Has(64) {
		t.Fatal("Has reports unseen voter")
	}
	sorted := s.Sorted()
	for i, want := range []types.ReplicaID{1, 3, 5, 70} {
		if sorted[i].Voter != want {
			t.Fatalf("Sorted()[%d] = %v, want %v", i, sorted[i].Voter, want)
		}
	}
}

// TestVoteSetMarkVsAdd pins the journal-replay semantics: Mark deduplicates
// a voter without retaining a vote, so a replayed own-vote is blocked from
// re-entering but never counts toward a fresh certificate.
func TestVoteSetMarkVsAdd(t *testing.T) {
	var s core.VoteSet
	if !s.Mark(2) {
		t.Fatal("fresh Mark rejected")
	}
	if s.Mark(2) {
		t.Fatal("repeated Mark accepted")
	}
	if s.Add(vs(2)) {
		t.Fatal("Add accepted a voter already marked")
	}
	if s.Len() != 0 {
		t.Fatalf("marked-only set retains %d votes", s.Len())
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
	if !s.Add(vs(3)) {
		t.Fatal("unrelated Add rejected")
	}
	if s.Len() != 1 || s.Count() != 2 {
		t.Fatalf("len=%d count=%d, want 1/2", s.Len(), s.Count())
	}
}

// TestVoteSetNilSafe pins that probing reads work on a nil set — the engines
// probe map entries without creating them.
func TestVoteSetNilSafe(t *testing.T) {
	var s *core.VoteSet
	if s.Has(0) {
		t.Fatal("nil set Has = true")
	}
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatal("nil set reports non-zero size")
	}
}

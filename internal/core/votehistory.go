package core

import (
	"repro/internal/blockstore"
	"repro/internal/intervals"
	"repro/internal/types"
)

// VotedBlock is one entry of a replica's voting history.
type VotedBlock struct {
	ID     types.BlockID
	Round  types.Round
	Height types.Height
}

// VoteHistory records every block this replica voted for, so that each new
// strong-vote can carry the marker (Section 3.2) or the interval set I
// (Section 3.4) summarizing which earlier blocks the vote must not endorse.
//
// The paper's local-state description — "for every fork in the blockchain,
// the replica additionally keeps the highest voted block on that fork" — is
// realized here by keeping all voted blocks and evaluating conflicts against
// the target chain on demand; per-fork maxima fall out of the max/union in
// Marker and Intervals.
type VoteHistory struct {
	store *blockstore.Store
	voted []VotedBlock
}

// NewVoteHistory creates an empty history backed by the replica's store.
func NewVoteHistory(store *blockstore.Store) *VoteHistory {
	return &VoteHistory{store: store}
}

// RecordVote notes that the replica voted for b. Call it exactly when the
// engine's voting rule fires.
func (h *VoteHistory) RecordVote(b *types.Block) {
	h.voted = append(h.voted, VotedBlock{ID: b.ID(), Round: b.Round, Height: b.Height})
}

// Len returns the number of recorded votes.
func (h *VoteHistory) Len() int { return len(h.voted) }

// Voted returns a copy of the history (for tests and diagnostics).
func (h *VoteHistory) Voted() []VotedBlock {
	out := make([]VotedBlock, len(h.voted))
	copy(out, h.voted)
	return out
}

// Marker computes the Section 3.2 marker for a vote on target:
//
//	marker = max{B'.round | B' conflicts target and replica voted for B'}
//
// with default 0 when the replica never voted on a conflicting fork.
func (h *VoteHistory) Marker(target *types.Block) types.Round {
	var m types.Round
	tid := target.ID()
	for _, v := range h.voted {
		if v.Round <= m {
			continue // cannot raise the max
		}
		if !h.store.Has(v.ID) {
			continue // pruned deep history; see PruneBelow
		}
		if h.store.Conflicts(v.ID, tid) {
			m = v.Round
		}
	}
	return m
}

// HeightMarker computes the Appendix D (SFT-Streamlet) marker for a vote on
// target: the largest *height* of any conflicting voted block.
func (h *VoteHistory) HeightMarker(target *types.Block) types.Height {
	var m types.Height
	tid := target.ID()
	for _, v := range h.voted {
		if v.Height <= m {
			continue
		}
		if !h.store.Has(v.ID) {
			continue
		}
		if h.store.Conflicts(v.ID, tid) {
			m = v.Height
		}
	}
	return m
}

// Intervals computes the Section 3.4 generalized endorsement set for a vote
// on target:
//
//	I = [1, r] \ ∪_F D_F,   D_F = [rl+1, rh]
//
// where, per fork F the replica voted on, rh is the largest round of a
// conflicting voted block on F and rl is the round of the common ancestor of
// that block and target. Subtracting one D per conflicting voted block is
// equivalent to the per-fork definition because blocks on the same fork
// produce nested intervals.
//
// If window > 0 the set is clipped to [r-window, r], the paper's variant
// that bounds the vote size to the most recent window rounds.
func (h *VoteHistory) Intervals(target *types.Block, window types.Round) intervals.Set {
	r := uint64(target.Round)
	set := intervals.Full(r)
	tid := target.ID()
	for _, v := range h.voted {
		if !h.store.Has(v.ID) {
			continue
		}
		if !h.store.Conflicts(v.ID, tid) {
			continue
		}
		ca := h.store.CommonAncestor(v.ID, tid)
		if ca == nil {
			// Unknown relation (pruned ancestry): conservatively refuse to
			// endorse anything up to the conflicting round.
			set = set.Subtract(intervals.Interval{Lo: 1, Hi: uint64(v.Round)})
			continue
		}
		set = set.Subtract(intervals.Interval{Lo: uint64(ca.Round) + 1, Hi: uint64(v.Round)})
	}
	if window > 0 && r > uint64(window) {
		set = set.Intersect(intervals.New(intervals.Interval{Lo: r - uint64(window), Hi: r}))
	}
	return set
}

// PruneBelow drops history entries below the given round. Engines call it
// together with blockstore pruning; both must use the same cut so that
// Marker never silently loses a conflicting vote that still matters.
func (h *VoteHistory) PruneBelow(r types.Round) {
	kept := h.voted[:0]
	for _, v := range h.voted {
		if v.Round >= r {
			kept = append(kept, v)
		}
	}
	h.voted = kept
}

package core

import (
	"repro/internal/blockstore"
	"repro/internal/intervals"
	"repro/internal/types"
)

// VotedBlock is one entry of a replica's voting history.
type VotedBlock struct {
	ID     types.BlockID
	Round  types.Round
	Height types.Height
}

// VoteHistory records every block this replica voted for, so that each new
// strong-vote can carry the marker (Section 3.2) or the interval set I
// (Section 3.4) summarizing which earlier blocks the vote must not endorse.
//
// The paper's local-state description — "for every fork in the blockchain,
// the replica additionally keeps the highest voted block on that fork" — is
// realized here by keeping all voted blocks and evaluating conflicts against
// the target chain on demand; per-fork maxima fall out of the max/union in
// Marker and Intervals.
type VoteHistory struct {
	store *blockstore.Store
	voted []VotedBlock

	// anc is a reused scratch index of the marker target's ancestor chain:
	// anc[d] is the ID of the ancestor at height target.Height-d (anc[0] is
	// the target itself). Chain heights are consecutive (the store enforces
	// height = parent height + 1), so one parent walk fills the index and
	// every subsequent conflict test is a single slice lookup instead of a
	// fresh ancestry walk — Marker drops from O(|voted| · chain) to
	// O(chain + |voted|) per vote, the dominant hot path of the simulations.
	anc []types.BlockID
}

// NewVoteHistory creates an empty history backed by the replica's store.
func NewVoteHistory(store *blockstore.Store) *VoteHistory {
	return &VoteHistory{store: store}
}

// RecordVote notes that the replica voted for b. Call it exactly when the
// engine's voting rule fires.
func (h *VoteHistory) RecordVote(b *types.Block) {
	h.voted = append(h.voted, VotedBlock{ID: b.ID(), Round: b.Round, Height: b.Height})
}

// Restore rebuilds the history from recovered entries (oldest first),
// replacing any current state. It is the crash-recovery hook: a replica
// restarted from its WAL reinstates exactly the voted set its pre-crash
// markers summarized, so post-restart votes can never contradict them.
func (h *VoteHistory) Restore(entries []VotedBlock) {
	h.voted = append(h.voted[:0], entries...)
}

// Len returns the number of recorded votes.
func (h *VoteHistory) Len() int { return len(h.voted) }

// Voted returns a copy of the history (for tests and diagnostics).
func (h *VoteHistory) Voted() []VotedBlock {
	out := make([]VotedBlock, len(h.voted))
	copy(out, h.voted)
	return out
}

// indexAncestors fills h.anc with target's ancestor chain (target first).
// The walk stops wherever the store's parent links stop (genesis, or a
// pruned/detached boundary), exactly like a direct IsAncestor walk would.
func (h *VoteHistory) indexAncestors(target *types.Block) {
	h.anc = append(h.anc[:0], target.ID())
	h.store.WalkAncestors(target.ID(), func(b *types.Block) bool {
		h.anc = append(h.anc, b.ID())
		return true
	})
}

// conflictsIndexed reports whether the stored voted block (id, height)
// conflicts with the indexed target, matching store.Conflicts exactly: a
// voted block below the target conflicts unless it sits on the indexed
// ancestor chain; one above the target (a rare fork-switch leftover) falls
// back to the full ancestry check.
func (h *VoteHistory) conflictsIndexed(target *types.Block, id types.BlockID, height types.Height) bool {
	if height > target.Height {
		return h.store.Conflicts(id, target.ID())
	}
	d := uint64(target.Height - height)
	return uint64(len(h.anc)) <= d || h.anc[d] != id
}

// Marker computes the Section 3.2 marker for a vote on target:
//
//	marker = max{B'.round | B' conflicts target and replica voted for B'}
//
// with default 0 when the replica never voted on a conflicting fork.
func (h *VoteHistory) Marker(target *types.Block) types.Round {
	var m types.Round
	if len(h.voted) == 0 {
		return m
	}
	h.indexAncestors(target)
	for _, v := range h.voted {
		if v.Round <= m {
			continue // cannot raise the max
		}
		if !h.store.Has(v.ID) {
			continue // pruned deep history; see PruneBelow
		}
		if h.conflictsIndexed(target, v.ID, v.Height) {
			m = v.Round
		}
	}
	return m
}

// HeightMarker computes the Appendix D (SFT-Streamlet) marker for a vote on
// target: the largest *height* of any conflicting voted block.
func (h *VoteHistory) HeightMarker(target *types.Block) types.Height {
	var m types.Height
	if len(h.voted) == 0 {
		return m
	}
	h.indexAncestors(target)
	for _, v := range h.voted {
		if v.Height <= m {
			continue
		}
		if !h.store.Has(v.ID) {
			continue
		}
		if h.conflictsIndexed(target, v.ID, v.Height) {
			m = v.Height
		}
	}
	return m
}

// Intervals computes the Section 3.4 generalized endorsement set for a vote
// on target:
//
//	I = [1, r] \ ∪_F D_F,   D_F = [rl+1, rh]
//
// where, per fork F the replica voted on, rh is the largest round of a
// conflicting voted block on F and rl is the round of the common ancestor of
// that block and target. Subtracting one D per conflicting voted block is
// equivalent to the per-fork definition because blocks on the same fork
// produce nested intervals.
//
// If window > 0 the set is clipped to [r-window, r], the paper's variant
// that bounds the vote size to the most recent window rounds.
func (h *VoteHistory) Intervals(target *types.Block, window types.Round) intervals.Set {
	r := uint64(target.Round)
	set := intervals.Full(r)
	if len(h.voted) > 0 {
		h.indexAncestors(target)
		for _, v := range h.voted {
			if !h.store.Has(v.ID) {
				continue
			}
			if !h.conflictsIndexed(target, v.ID, v.Height) {
				continue
			}
			ca := h.commonAncestorIndexed(target, v.ID)
			if ca == nil {
				// Unknown relation (pruned ancestry): conservatively refuse to
				// endorse anything up to the conflicting round.
				set = set.Subtract(intervals.Interval{Lo: 1, Hi: uint64(v.Round)})
				continue
			}
			set = set.Subtract(intervals.Interval{Lo: uint64(ca.Round) + 1, Hi: uint64(v.Round)})
		}
	}
	if window > 0 && r > uint64(window) {
		set = set.Intersect(intervals.New(intervals.Interval{Lo: r - uint64(window), Hi: r}))
	}
	return set
}

// commonAncestorIndexed returns the common ancestor of a voted block known
// to conflict with the indexed target: the first ancestor of the voted block
// that lies on the target's ancestor chain. An ancestor of the conflicting
// block can never be a strict descendant of the target (that would make the
// voted block extend the target), so "does not conflict" means "on the
// chain". Returns nil when the ancestry was pruned away, matching
// store.CommonAncestor.
func (h *VoteHistory) commonAncestorIndexed(target *types.Block, id types.BlockID) *types.Block {
	var ca *types.Block
	h.store.WalkAncestors(id, func(b *types.Block) bool {
		if !h.conflictsIndexed(target, b.ID(), b.Height) {
			ca = b
			return false
		}
		return true
	})
	return ca
}

// PruneBelow drops history entries below the given round. Engines call it
// together with blockstore pruning; both must use the same cut so that
// Marker never silently loses a conflicting vote that still matters.
func (h *VoteHistory) PruneBelow(r types.Round) {
	kept := h.voted[:0]
	for _, v := range h.voted {
		if v.Round >= r {
			kept = append(kept, v)
		}
	}
	h.voted = kept
}

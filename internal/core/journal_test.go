package core

import (
	"testing"

	"repro/internal/intervals"
	"repro/internal/types"
	"repro/internal/wal"
)

func openTestJournal(t testing.TB) *Journal {
	t.Helper()
	l, err := wal.Open(t.TempDir(), wal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("wal: %v", err)
	}
	j := NewJournal(l)
	t.Cleanup(func() { _ = j.Close() })
	return j
}

func TestJournalRoundtrip(t *testing.T) {
	j := openTestJournal(t)

	g := types.Genesis()
	gqc := types.NewGenesisQC(g.ID())
	b1 := types.NewBlock(g.ID(), gqc, 1, 1, 0, 10, types.Payload{
		Txns: []types.Transaction{{Sender: 1, Seq: 1, Data: []byte("tx")}},
	}, nil)
	v1 := types.Vote{Block: b1.ID(), Round: 1, Height: 1, Voter: 2, Marker: 0, Signature: []byte("s1")}
	v2 := types.Vote{
		Block: b1.ID(), Round: 3, Height: 2, Voter: 2,
		HasIntervals: true,
		Intervals:    intervals.New(intervals.Interval{Lo: 2, Hi: 3}),
		Signature:    []byte("s2"),
	}
	qc1 := &types.QC{Block: b1.ID(), Round: 1, Height: 1, Votes: []types.Vote{v1}}

	if err := j.AppendBlock(b1); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendVote(&v1); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendQC(qc1); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendLock(4); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendLock(2); err != nil { // stale lock: Recover keeps the max
		t.Fatal(err)
	}
	if err := j.AppendVote(&v2); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommit(b1.ID(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(j.Log())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Blocks) != 1 || rec.Blocks[0].ID() != b1.ID() {
		t.Fatalf("blocks: %v", rec.Blocks)
	}
	if len(rec.Votes) != 2 || rec.Votes[0].Round != 1 || rec.Votes[1].Round != 3 {
		t.Fatalf("votes: %+v", rec.Votes)
	}
	if !rec.Votes[1].HasIntervals || !rec.Votes[1].Intervals.Equal(v2.Intervals) {
		t.Fatalf("interval vote lost its set: %+v", rec.Votes[1])
	}
	if rec.VotedRound() != 3 {
		t.Fatalf("voted round %d, want 3", rec.VotedRound())
	}
	if len(rec.QCs) != 1 || rec.QCs[0].Block != qc1.Block {
		t.Fatalf("qcs: %v", rec.QCs)
	}
	if rec.Locked != 4 {
		t.Fatalf("locked %d, want 4", rec.Locked)
	}
	if rec.HighQC == nil || rec.HighQC.Round != 1 {
		t.Fatalf("high qc: %v", rec.HighQC)
	}
	if rec.Committed != b1.ID() || rec.CommittedHeight != 1 || rec.CommittedRound != 1 {
		t.Fatalf("commit marker: %v h%d r%d", rec.Committed, rec.CommittedHeight, rec.CommittedRound)
	}
	if rec.Empty() {
		t.Fatal("recovery reported empty")
	}
}

func TestRecoverEmptyJournal(t *testing.T) {
	j := openTestJournal(t)
	rec, err := Recover(j.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
}

// TestJournalVoteAppendAllocFree is the PR-2 acceptance guard: the WAL
// append on the vote path — encode the vote into the journal's scratch,
// frame it, stage it, flush the batch — performs zero allocations in steady
// state.
func TestJournalVoteAppendAllocFree(t *testing.T) {
	j := openTestJournal(t)
	v := types.Vote{
		Block: types.BlockID{1}, Round: 9, Height: 7, Voter: 3, Marker: 2,
		Signature: make([]byte, 64),
	}
	// Warm up scratch and batch buffers.
	for i := 0; i < 64; i++ {
		if err := j.AppendVote(&v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := j.AppendVote(&v); err != nil {
			t.Fatal(err)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("vote-path WAL append allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkJournalAppendVote(b *testing.B) {
	j := openTestJournal(b)
	v := types.Vote{
		Block: types.BlockID{1}, Round: 9, Height: 7, Voter: 3, Marker: 2,
		Signature: make([]byte, 64),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.AppendVote(&v); err != nil {
			b.Fatal(err)
		}
		if err := j.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

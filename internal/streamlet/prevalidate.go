package streamlet

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pacemaker"
	"repro/internal/types"
)

// Prevalidate implements engine.Pipelined: the stateless checks of every
// Streamlet message — proposal and vote signatures, recursively through the
// echo relay wrapper. It reads only immutable configuration, so runtimes may
// call it from any number of goroutines concurrently with the event loop.
//
// StateSyncResponse segments keep their link-by-link engine-loop
// verification (their accept/reject semantics are prefix-stateful), and sync
// requests carry no signatures; both pass through unjudged.
func (r *Replica) Prevalidate(from types.ReplicaID, msg types.Message) error {
	if !r.cfg.VerifySignatures {
		return nil
	}
	if _, isEcho := msg.(*types.Echo); isEcho {
		// The relay wrapper adds no signature of its own; Figure 10's echo
		// mechanism trusts the inner message's original signature, so
		// prevalidation unwraps exactly like the state stage's handler —
		// with the same nesting cap, so the two stages agree on every input.
		if msg = unwrapEcho(msg); msg == nil {
			return fmt.Errorf("streamlet: empty or over-nested echo")
		}
	}
	switch m := msg.(type) {
	case *types.Proposal:
		return r.prevalidateProposal(m)
	case *types.VoteMsg:
		return r.prevalidateVote(m.Vote)
	}
	return nil
}

// prevalidateVote checks a vote signature through the verified-signature
// memo: the echo mechanism re-delivers byte-identical votes up to n times,
// and only the first copy pays the full verification (a corrupted or
// re-attributed copy digests differently, misses, and fails in full).
func (r *Replica) prevalidateVote(v types.Vote) error {
	var scratch [128]byte
	payload := v.AppendSigningPayload(scratch[:0])
	if !r.sigCache.Verify(r.cfg.Verifier, v.Voter, payload, v.Signature) {
		return fmt.Errorf("streamlet: bad vote signature from %v", v.Voter)
	}
	return nil
}

// prevalidateProposal mirrors the stateless half of the voting-rule checks:
// well-formedness, round leadership, and the proposer's signature.
func (r *Replica) prevalidateProposal(p *types.Proposal) error {
	if p.Block == nil {
		return fmt.Errorf("streamlet: proposal without block")
	}
	if p.Block.Round != p.Round || p.Block.Proposer != p.Sender {
		return fmt.Errorf("streamlet: proposal round/proposer mismatch")
	}
	if w := r.cfg.ProposalWindow; w > 0 {
		// The round snapshot only ever lags the event loop (rounds never
		// regress), so a drop here is at worst over-cautious by one event and
		// the state stage re-judges anything that passes. Checked before the
		// signature so far-future spam costs a comparison, not verification.
		if cur := types.Round(r.curRound.Load()); p.Round > cur+w {
			r.cfg.Obs.OnRoundEntryRejected(obs.ReasonFutureWindow)
			return fmt.Errorf("streamlet: proposal for round %d beyond window (at %d)", p.Round, cur)
		}
	}
	if pacemaker.Leader(p.Round, r.cfg.N) != p.Sender {
		return fmt.Errorf("streamlet: proposal from non-leader %v", p.Sender)
	}
	if !r.sigCache.Verify(r.cfg.Verifier, p.Sender, p.SigningPayload(), p.Signature) {
		return fmt.Errorf("streamlet: bad proposal signature from %v", p.Sender)
	}
	return nil
}

package streamlet_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/streamlet"
	"repro/internal/types"
)

// TestLongRangeAttackComparison executes Appendix D.4's comparison: to make
// honest replicas vote on a fork conflicting with a deep strong-committed
// block,
//
//   - in SFT-DiemBFT the adversary corrupts a quorum for ONE round: a single
//     certified fork block with a round above the honest locks re-enables
//     honest voting on the fork;
//   - in SFT-Streamlet the same one-block fork is useless: honest replicas
//     vote only for blocks extending a LONGEST certified chain, so the
//     adversary must certify on the order of the fork depth's worth of
//     blocks by itself.
func TestLongRangeAttackComparison(t *testing.T) {
	const (
		n = 4
		f = 1
	)
	ring, err := crypto.NewKeyRing(n, 31, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}

	// forgeQC simulates a corrupted quorum signing a certificate for b.
	forgeQC := func(b *types.Block) *types.QC {
		votes := make([]types.Vote, 0, 2*f+1)
		for i := 0; i <= 2*f; i++ {
			v := types.Vote{Block: b.ID(), Round: b.Round, Height: b.Height, Voter: types.ReplicaID(i)}
			v.Signature = ring.Signer(types.ReplicaID(i)).Sign(v.SigningPayload())
			votes = append(votes, v)
		}
		return &types.QC{Block: b.ID(), Round: b.Round, Height: b.Height, Votes: votes}
	}
	hasVote := func(outs []engine.Output) bool {
		for _, o := range outs {
			switch m := o.(type) {
			case engine.Send:
				if _, ok := m.Msg.(*types.VoteMsg); ok {
					return true
				}
			case engine.Broadcast:
				if _, ok := m.Msg.(*types.VoteMsg); ok {
					return true
				}
			}
		}
		return false
	}

	// --- SFT-DiemBFT: one corrupted round suffices -----------------------
	t.Run("diembft", func(t *testing.T) {
		// Run an honest cluster for a while to build a committed chain.
		var victim *diembft.Replica
		sim := simnet.New(simnet.Config{
			N:       n,
			Latency: &simnet.UniformModel{Base: 2 * time.Millisecond},
			Seed:    1,
		})
		for i := 0; i < n; i++ {
			id := types.ReplicaID(i)
			rep, err := diembft.New(diembft.Config{
				ID: id, N: n, F: f,
				Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
				SFT: true, RoundTimeout: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if id == 3 {
				victim = rep
			}
			sim.SetEngine(id, rep)
		}
		sim.Run(2 * time.Second)

		// Pick a deep committed ancestor as the fork point.
		store := victim.Store()
		tip := store.HighQC().Block
		forkPoint := store.AncestorAtHeight(tip, 3)
		if forkPoint == nil {
			t.Fatal("chain too short")
		}
		cur := victim.Round()

		// Round cur+1: the corrupted quorum certifies fork block B'.
		bPrime := types.NewBlock(forkPoint.ID(), store.QCFor(forkPoint.ID()), cur+1,
			forkPoint.Height+1, types.ReplicaID(uint64(cur)%n),
			int64(2*time.Second), types.Payload{Txns: []types.Transaction{{Sender: 666}}}, nil)
		pPrime := &types.Proposal{Block: bPrime, Round: cur + 1, Sender: types.ReplicaID(uint64(cur) % n)}
		pPrime.Signature = ring.Signer(pPrime.Sender).Sign(pPrime.SigningPayload())
		outs := victim.OnMessage(2*time.Second, pPrime.Sender, pPrime)
		if hasVote(outs) {
			t.Fatal("honest replica voted directly for the deep fork block (lock broken?)")
		}

		// Round cur+2: a block EXTENDING B', justified by the forged QC.
		cPrime := types.NewBlock(bPrime.ID(), forgeQC(bPrime), cur+2, bPrime.Height+1,
			types.ReplicaID(uint64(cur+1)%n), int64(2*time.Second), types.Payload{}, nil)
		p2 := &types.Proposal{Block: cPrime, Round: cur + 2, Sender: types.ReplicaID(uint64(cur+1) % n)}
		p2.Signature = ring.Signer(p2.Sender).Sign(p2.SigningPayload())
		outs = victim.OnMessage(2*time.Second+time.Millisecond, p2.Sender, p2)
		if !hasVote(outs) {
			t.Fatal("one certified fork block did not re-enable honest voting — D.4 says it must in DiemBFT")
		}
	})

	// --- SFT-Streamlet: one corrupted block is not enough ----------------
	t.Run("streamlet", func(t *testing.T) {
		var victim *streamlet.Replica
		sim := simnet.New(simnet.Config{
			N:       n,
			Latency: &simnet.UniformModel{Base: 2 * time.Millisecond},
			Seed:    2,
		})
		for i := 0; i < n; i++ {
			id := types.ReplicaID(i)
			rep, err := streamlet.New(streamlet.Config{
				ID: id, N: n, F: f,
				Signer: ring.Signer(id), Verifier: ring, VerifySignatures: true,
				SFT: true, Delta: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if id == 3 {
				victim = rep
			}
			sim.SetEngine(id, rep)
		}
		sim.Run(2 * time.Second)

		store := victim.Store()
		forkPoint := store.AncestorAtHeight(store.HighQC().Block, 3)
		if forkPoint == nil {
			t.Fatal("chain too short")
		}
		cur := victim.Round()

		// Certified fork block B' at the victim's CURRENT round, from the
		// correct leader — maximally favorable to the adversary.
		leader := types.ReplicaID(uint64(cur-1) % n)
		bPrime := types.NewBlock(forkPoint.ID(), store.QCFor(forkPoint.ID()), cur,
			forkPoint.Height+1, leader, int64(2*time.Second),
			types.Payload{Txns: []types.Transaction{{Sender: 666}}}, nil)
		pPrime := &types.Proposal{Block: bPrime, Round: cur, Sender: leader}
		pPrime.Signature = ring.Signer(leader).Sign(pPrime.SigningPayload())
		outs := victim.OnMessage(2*time.Second, leader, pPrime)
		if hasVote(outs) {
			t.Fatal("streamlet replica voted for a short fork — longest-chain rule broken")
		}
		// Even a forged certificate for B' doesn't help: the fork chain
		// (length forkPoint.Height+1) is still far shorter than the longest
		// certified chain, so proposals extending B' are refused too.
		if err := store.Insert(bPrime); err == nil {
			if _, _, err := store.RegisterQC(forgeQC(bPrime)); err != nil {
				t.Fatal(err)
			}
		}
		next := types.ReplicaID(uint64(cur) % n)
		cPrime := types.NewBlock(bPrime.ID(), forgeQC(bPrime), cur+1, bPrime.Height+1,
			next, int64(2*time.Second), types.Payload{}, nil)
		p2 := &types.Proposal{Block: cPrime, Round: cur + 1, Sender: next}
		p2.Signature = ring.Signer(next).Sign(p2.SigningPayload())
		// Advance the victim into round cur+1 so only the chain-length rule
		// can refuse the vote.
		victim.OnTimer(2*time.Second, int(cur))
		outs = victim.OnMessage(2*time.Second+time.Millisecond, next, p2)
		if hasVote(outs) {
			t.Fatal("streamlet replica helped extend a one-block fork — adversary should need ~depth corrupted rounds")
		}
	})
}

package streamlet_test

import (
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/streamlet"
	"repro/internal/types"
)

// corrupt swaps replica id's engine for one wrapped with the given
// adversary behaviors — the composable subsystem that replaced the old
// streamlet.Config.WithholdVotes knob and gives Streamlet the leader
// misbehaviors (equivocation included) that previously only DiemBFT had.
func corrupt(t *testing.T, sim *simnet.Sim, rep *streamlet.Replica, n, f int, specs ...adversary.Spec) {
	t.Helper()
	ring, err := crypto.NewKeyRing(n, 7, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	var eng engine.Engine
	eng, err = adversary.Wrap(rep, adversary.Config{
		ID: rep.ID(), N: n, F: f, Signer: ring.Signer(rep.ID()), Seed: int64(rep.ID()) + 1,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetEngine(rep.ID(), eng)
}

// TestStreamletWithholdingCapsStrength: one silent Byzantine replica
// (t = f = 1 at n = 4) caps SFT-Streamlet's strength at 2f - t, mirroring
// Definition 2 and Theorem 5.
func TestStreamletWithholdingCapsStrength(t *testing.T) {
	best := make(map[types.BlockID]int)
	simCfg := simnet.Config{
		Seed: 31,
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > best[b.ID()] {
				best[b.ID()] = x
			}
		},
	}
	sim, reps := buildCluster(t, 4, 1, nil, simCfg)
	corrupt(t, sim, reps[3], 4, 1, adversary.Spec{Kind: adversary.Withhold})
	sim.Run(6 * time.Second)

	if len(best) == 0 {
		t.Fatal("no strong commits with one silent replica")
	}
	for id, x := range best {
		if x > 1 { // 2f - t = 1
			t.Fatalf("block %v reached %d-strong with a silent replica", id, x)
		}
	}
}

// TestStreamletEquivocatingLeaderSafety: Streamlet misbehavior parity with
// DiemBFT — one equivocating leader (t = f = 1 at n = 4) forks its led
// rounds, yet honest replicas never commit divergent prefixes and the
// cluster keeps committing (the counterpart of the DiemBFT regression
// test; before the adversary subsystem, only DiemBFT could equivocate).
func TestStreamletEquivocatingLeaderSafety(t *testing.T) {
	commits := make(map[types.ReplicaID][]types.BlockID)
	simCfg := simnet.Config{
		Seed: 33,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b.ID())
		},
	}
	sim, reps := buildCluster(t, 4, 1, nil, simCfg)
	corrupt(t, sim, reps[2], 4, 1, adversary.Spec{Kind: adversary.Equivocate})
	sim.Run(8 * time.Second)

	honest := []types.ReplicaID{0, 1, 3}
	for _, id := range honest {
		if len(commits[id]) < 5 {
			t.Fatalf("replica %v committed only %d blocks under an equivocating leader", id, len(commits[id]))
		}
	}
	ref := commits[0]
	for _, id := range honest[1:] {
		other := commits[id]
		for i := 0; i < min(len(ref), len(other)); i++ {
			if ref[i] != other[i] {
				t.Fatalf("SAFETY VIOLATION: divergence at %d between 0 and %v", i, id)
			}
		}
	}
}

// TestStreamletCommitNeedsConsecutiveRounds: a certified-but-gapped chain
// must not commit (the commit rule demands three adjacent certified blocks
// with consecutive round numbers).
func TestStreamletCommitNeedsConsecutiveRounds(t *testing.T) {
	// Crash one replica mid-run: with n=4 and a crash, rounds led by the
	// crashed replica produce no block, creating round gaps. Liveness
	// eventually resumes (consecutive honest-led rounds exist), and safety
	// must hold throughout.
	commits := make(map[types.ReplicaID][]types.BlockID)
	simCfg := simnet.Config{
		Seed: 32,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b.ID())
		},
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	sim.CrashAt(1, 500*time.Millisecond)
	sim.Run(8 * time.Second)

	for _, id := range []types.ReplicaID{0, 2, 3} {
		if len(commits[id]) < 5 {
			t.Fatalf("replica %v committed only %d blocks after crash", id, len(commits[id]))
		}
	}
	ref := commits[0]
	for _, id := range []types.ReplicaID{2, 3} {
		other := commits[id]
		for i := 0; i < min(len(ref), len(other)); i++ {
			if ref[i] != other[i] {
				t.Fatalf("divergence at %d between 0 and %v", i, id)
			}
		}
	}
}

package streamlet_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/streamlet"
	"repro/internal/types"
	"repro/internal/wal"
)

// TestStreamletKillRestartRecovers: the SFT-Streamlet engine's durability
// hooks — a replica killed mid-run and restored from its WAL reports the
// same committed prefix and voted history, and a live restart rejoins the
// cluster and keeps committing the same chain as everyone else.
func TestStreamletKillRestartRecovers(t *testing.T) {
	const (
		n      = 4
		f      = 1
		victim = types.ReplicaID(2)
	)
	dir := t.TempDir()
	openJ := func() *core.Journal {
		l, err := wal.Open(filepath.Join(dir, fmt.Sprintf("replica-%d", victim)), wal.Options{NoSync: true})
		if err != nil {
			t.Fatalf("wal: %v", err)
		}
		return core.NewJournal(l)
	}
	ring, err := crypto.NewKeyRing(n, 7, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}

	commits := make(map[types.ReplicaID][]types.BlockID)
	simCfg := simnet.Config{
		Seed: 31,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b.ID())
		},
	}
	sim, replicas := buildCluster(t, n, f, func(id types.ReplicaID, c *streamlet.Config) {
		if id == victim {
			c.Journal = openJ()
		}
	}, simCfg)

	const crashAt, restartAt = 1 * time.Second, 2 * time.Second
	sim.CrashAt(victim, crashAt)
	sim.RestartAt(victim, restartAt, func() engine.Engine {
		j := openJ()
		rec, err := core.Recover(j.Log())
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		rep, err := streamlet.New(streamlet.Config{
			ID: victim, N: n, F: f,
			Signer: ring.Signer(victim), Verifier: ring, VerifySignatures: true,
			Delta: 20 * time.Millisecond, SFT: true,
			Journal: j,
		})
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if err := rep.Restore(rec); err != nil {
			t.Fatalf("restore: %v", err)
		}
		// The restored state must match the frozen pre-crash engine.
		pre := replicas[victim]
		if rep.CommittedHeight() != pre.CommittedHeight() || rep.LastCommitted() != pre.LastCommitted() {
			t.Errorf("restored commit state h%d/%v, pre-crash h%d/%v",
				rep.CommittedHeight(), rep.LastCommitted(), pre.CommittedHeight(), pre.LastCommitted())
		}
		preVoted, postVoted := pre.History().Voted(), rep.History().Voted()
		if len(preVoted) != len(postVoted) {
			t.Errorf("vote history length %d, pre-crash %d", len(postVoted), len(preVoted))
		}
		return rep
	})
	sim.Run(5 * time.Second)

	if len(commits[victim]) == 0 {
		t.Fatal("victim committed nothing")
	}
	// The victim's full commit sequence (pre-crash + post-rejoin) must be a
	// consistent prefix-wise match of an always-up replica's chain.
	ref := commits[0]
	idx := make(map[types.BlockID]int, len(ref))
	for i, id := range ref {
		idx[id] = i
	}
	last := -1
	for _, id := range commits[victim] {
		i, ok := idx[id]
		if !ok {
			t.Fatalf("victim committed %v, which replica 0 never committed", id)
		}
		if i <= last {
			t.Fatalf("victim commit order inverted at %v", id)
		}
		last = i
	}
	// And it must have committed something NEW after the restart (rejoin,
	// not just replay): its last commit should be beyond the chain length
	// possible at crash time.
	if len(commits[victim]) < 3 {
		t.Fatalf("victim only committed %d blocks; rejoin appears dead", len(commits[victim]))
	}
}

// Package streamlet implements the Streamlet protocol (Figure 10) and its
// SFT extension SFT-Streamlet (Figure 11, Appendix D): lock-step 2Δ rounds,
// longest-certified-chain proposing/voting, all-to-all votes with the echo
// mechanism, the consecutive-round 3-chain commit rule, and height-keyed
// strong-votes/k-endorsements for strengthened fault tolerance.
package streamlet

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/pacemaker"
	"repro/internal/statesync"
	"repro/internal/types"
)

// Config parameterizes a Streamlet replica.
type Config struct {
	// ID is this replica; N = 3F+1 replicas total.
	ID   types.ReplicaID
	N, F int

	// Signer/Verifier provide the PKI.
	Signer           crypto.Signer
	Verifier         crypto.Verifier
	VerifySignatures bool

	// Delta is the assumed maximum network delay ∆; rounds last 2∆.
	Delta time.Duration

	// SFT enables strengthened fault tolerance (height markers,
	// k-endorsements, Strength outputs).
	SFT bool
	// Horizon bounds the endorsement walk (see core.Config).
	Horizon int

	// DisableEcho turns off the O(n^3) echo relay; deliveries then rely on
	// the sender's broadcast alone (fine on the simulator's reliable
	// links, and much cheaper for large n).
	DisableEcho bool

	// ProposalWindow, when > 0, drops proposals more than this many rounds
	// ahead of the local lock-step round — at prevalidation where possible,
	// so spammed far-future proposals cost a comparison instead of signature
	// work and orphan-buffer memory. Streamlet rounds are wall-clock slots,
	// so honest proposals only run ahead by clock skew; 0 keeps the
	// permissive baseline (and existing fixed-seed runs bit-identical).
	ProposalWindow types.Round

	// Payload supplies block transactions; nil means empty blocks.
	Payload func(r types.Round) types.Payload

	// PayloadNow, if non-nil, supersedes Payload with a variant that also
	// receives the engine's current virtual time (see the DiemBFT config).
	PayloadNow func(r types.Round, now time.Duration) types.Payload

	// App, if non-nil, enables the deterministic execution layer: proposals
	// are executed before voting, votes carry the state root (AppHash) inside
	// their signed payload, and state-divergent proposals are refused. See
	// the DiemBFT config's App field for the full contract.
	App *app.Executor

	// NaiveEndorsements switches the SFT tracker to the UNSAFE marker-free
	// counting of Appendix C — only for the scenario fuzzer's checker
	// demonstrations, never exposed by the public facade.
	NaiveEndorsements bool

	// Journal, if non-nil, write-ahead-logs accepted blocks, own votes,
	// formed certificates and commits, flushed before each event's outputs
	// are released (the same durability contract as the DiemBFT engine).
	Journal *core.Journal

	// Obs, if non-nil, receives lifecycle observations (round entries,
	// proposals, votes, certification, commits, strength rises). Hooks are
	// pure observation, so runs are bit-identical with Obs set or nil.
	Obs *obs.Obs
}

func (c *Config) quorum() int { return 2*c.F + 1 }

// Replica is one Streamlet (optionally SFT-Streamlet) replica engine.
type Replica struct {
	cfg     Config
	store   *blockstore.Store
	history *core.VoteHistory
	tracker *core.Tracker

	round      types.Round
	votedRound map[types.Round]bool

	// votes is the per-block vote collection; its bitmap doubles as the
	// (block, voter) dedup the engine previously kept in a separate
	// map[voteKey]bool — Mark records a voter as seen without retaining a
	// vote (journal replay), Add does both.
	votes    map[types.BlockID]*core.VoteSet
	orphans  map[types.BlockID][]*types.Proposal
	maxCertH types.Height // height of the longest certified chain

	seenProp map[types.BlockID]bool

	// aggregate marks that the verifier's scheme compacts formed QCs into
	// the aggregated-signature form (crypto.AggregateQC).
	aggregate bool

	lastCommitted types.BlockID
	committedH    types.Height

	sigScratch []byte // reused vote signing-payload buffer

	// sigCache memoizes verified vote/proposal signatures for Prevalidate
	// (nil when signature checking is off). The echo mechanism delivers each
	// message up to n times; the state stage dedups copies before its
	// signature check, and this memo gives the stateless prevalidation stage
	// the same economy. Internally synchronized.
	sigCache *crypto.SigCache

	// journal is the durability log (nil = in-memory replica); restoring
	// mutes journaling and Strength re-emission during Restore; recovered
	// makes Init rejoin via state sync.
	journal   *core.Journal
	restoring bool
	recovered bool

	// preverified is set while handling a message that already passed
	// Prevalidate (see engine.Pipelined); the state stage then skips its
	// signature checks. Only the event-loop goroutine touches it.
	preverified bool

	// evNow is the current event's engine time, stashed at event entry for
	// observation callbacks without a `now` parameter in scope. Only the
	// event-loop goroutine touches it.
	evNow time.Duration

	// curRound mirrors round for the Prevalidate goroutines' future-window
	// checks; the event loop owns round itself.
	curRound atomic.Int64

	outs []engine.Output
}

// New creates a Streamlet replica engine.
func New(cfg Config) (*Replica, error) {
	if cfg.N != 3*cfg.F+1 {
		return nil, fmt.Errorf("streamlet: n=%d must be 3f+1 (f=%d)", cfg.N, cfg.F)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("streamlet: delta must be positive")
	}
	if cfg.Signer == nil || cfg.Verifier == nil {
		return nil, fmt.Errorf("streamlet: signer and verifier are required")
	}
	r := &Replica{
		cfg:        cfg,
		store:      blockstore.New(),
		round:      1,
		votedRound: make(map[types.Round]bool),
		votes:      make(map[types.BlockID]*core.VoteSet),
		orphans:    make(map[types.BlockID][]*types.Proposal),
		seenProp:   make(map[types.BlockID]bool),
		aggregate:  crypto.Aggregates(cfg.Verifier),
	}
	r.journal = cfg.Journal
	if cfg.VerifySignatures {
		r.sigCache = crypto.NewSigCache(0)
	}
	r.history = core.NewVoteHistory(r.store)
	r.lastCommitted = r.store.Genesis().ID()
	if cfg.SFT {
		r.tracker = core.NewTracker(r.store, core.Config{
			N:       cfg.N,
			F:       cfg.F,
			Mode:    core.ModeHeight,
			Naive:   cfg.NaiveEndorsements,
			Horizon: cfg.Horizon,
			OnStrength: func(b *types.Block, x int) {
				if r.restoring {
					return
				}
				r.outs = append(r.outs, engine.Strength{Block: b, X: x})
				cfg.Obs.OnStrength(b, x, r.evNow)
			},
		})
	}
	return r, nil
}

// ID implements engine.Engine.
func (r *Replica) ID() types.ReplicaID { return r.cfg.ID }

// Store exposes the block tree for tests and the harness.
func (r *Replica) Store() *blockstore.Store { return r.store }

// Tracker exposes the SFT tracker (nil when SFT is disabled).
func (r *Replica) Tracker() *core.Tracker { return r.tracker }

// Round returns the current lock-step round.
func (r *Replica) Round() types.Round { return r.round }

// CommittedHeight returns the height of the last commit.
func (r *Replica) CommittedHeight() types.Height { return r.committedH }

// LastCommitted returns the ID of the last committed block.
func (r *Replica) LastCommitted() types.BlockID { return r.lastCommitted }

// History exposes the vote history (tests and recovery diagnostics).
func (r *Replica) History() *core.VoteHistory { return r.history }

// AppExecutor exposes the execution layer (nil when no app is configured).
func (r *Replica) AppExecutor() *app.Executor { return r.cfg.App }

// executeBlock runs b through the execution layer (memoized; fresh
// executions tick the observation counter).
func (r *Replica) executeBlock(b *types.Block) ([32]byte, error) {
	before := r.cfg.App.Executed()
	root, err := r.cfg.App.Execute(b)
	if err == nil && r.cfg.App.Executed() > before {
		r.cfg.Obs.OnAppExecuted()
	}
	return root, err
}

// tryExecute executes b if the execution layer is on, tolerating failure
// (the block is stored for ordering but gets no vote).
func (r *Replica) tryExecute(b *types.Block) {
	if r.cfg.App != nil {
		_, _ = r.executeBlock(b)
	}
}

// Restore rebuilds the replica from a journal replay; call after New,
// before Init. Votes, certificates and the committed prefix are reinstated
// so post-restart height markers cannot contradict pre-crash ones.
func (r *Replica) Restore(rec *core.Recovery) error {
	if rec == nil || rec.Empty() {
		return nil
	}
	r.restoring = true
	defer func() { r.restoring = false }()
	r.store.Restore(rec.Blocks, func(b *types.Block, qcImproved bool) {
		r.seenProp[b.ID()] = true
		// Re-execute in log order so the execution layer reconverges to the
		// exact pre-crash roots (parents precede children in the journal).
		r.tryExecute(b)
		if qcImproved {
			r.noteRestoredCert(b.Justify)
		}
	})
	for _, qc := range rec.QCs {
		if r.store.Has(qc.Block) {
			r.registerCert(qc)
		}
	}
	voted := make([]core.VotedBlock, 0, len(rec.Votes))
	for i := range rec.Votes {
		v := &rec.Votes[i]
		voted = append(voted, core.VotedBlock{ID: v.Block, Round: v.Round, Height: v.Height})
		r.votedRound[v.Round] = true
		// Mark, not Add: the replayed own vote is deduplicated when its echo
		// arrives but never re-counted toward a fresh certificate, exactly the
		// pre-crash semantics.
		set := r.votes[v.Block]
		if set == nil {
			set = &core.VoteSet{}
			r.votes[v.Block] = set
		}
		set.Mark(v.Voter)
	}
	r.history.Restore(voted)
	if rec.CommittedHeight > 0 {
		r.lastCommitted = rec.Committed
		r.committedH = rec.CommittedHeight
		if r.cfg.App != nil {
			// Advance the state machine's committed base to the recovered
			// commit point (the blocks were re-executed above).
			if b := r.store.Block(rec.Committed); b != nil {
				if err := r.cfg.App.OnCommit(b); err != nil {
					return fmt.Errorf("streamlet: restore app commit: %w", err)
				}
			}
		}
	}
	r.recovered = true
	return nil
}

// registerCert installs a recovered standalone certificate: store, longest
// certified chain, endorsement tracker.
func (r *Replica) registerCert(qc *types.QC) {
	if _, improved, err := r.store.RegisterQC(qc); err != nil || !improved {
		return
	}
	r.noteRestoredCert(qc)
}

// noteRestoredCert absorbs a certificate the restore path already
// registered: longest-certified-chain state plus the endorsement tracker.
// No commit re-evaluation — Restore reinstates the committed prefix from
// the journal's commit records instead of re-emitting Commit outputs.
func (r *Replica) noteRestoredCert(qc *types.QC) {
	b := r.store.Block(qc.Block)
	if b == nil {
		return
	}
	if b.Height > r.maxCertH {
		r.maxCertH = b.Height
	}
	if r.tracker != nil {
		r.tracker.OnQC(qc)
	}
}

// Init implements engine.Engine. Streamlet rounds are lock-step wall-clock
// slots of 2∆, so a replica initialized mid-run (a crash-restart) derives
// its round from the clock instead of starting over at 1; a recovered
// replica also broadcasts a state-sync request to fetch what it missed.
func (r *Replica) Init(now time.Duration) []engine.Output {
	r.outs = nil
	r.evNow = now
	if slot := types.Round(now / (2 * r.cfg.Delta)); slot+1 > r.round {
		r.round = slot + 1
	}
	r.curRound.Store(int64(r.round))
	r.cfg.Obs.OnRoundEnter(r.round, now, false)
	// Align the first timer to the next slot boundary so a mid-run restart
	// keeps ticking in phase with the rest of the cluster.
	delay := 2*r.cfg.Delta - now%(2*r.cfg.Delta)
	r.outs = append(r.outs, engine.SetTimer{ID: int(r.round), Delay: delay})
	if r.recovered {
		r.outs = append(r.outs, engine.Broadcast{
			Msg: statesync.NewRequest(r.committedH, r.cfg.ID),
		})
	}
	r.maybePropose(now)
	return r.take()
}

// OnTimer advances the lock-step round (the synchronization rule: 2∆ per
// round).
func (r *Replica) OnTimer(now time.Duration, id int) []engine.Output {
	r.outs = nil
	r.evNow = now
	if types.Round(id) == r.round {
		r.round++
		r.curRound.Store(int64(r.round))
		r.cfg.Obs.OnRoundEnter(r.round, now, false)
		r.outs = append(r.outs, engine.SetTimer{ID: int(r.round), Delay: 2 * r.cfg.Delta})
		r.maybePropose(now)
	}
	return r.take()
}

// OnMessage implements engine.Engine.
func (r *Replica) OnMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	r.preverified = false
	r.outs = nil
	r.evNow = now
	r.handle(now, msg)
	return r.take()
}

// OnVerifiedMessage implements engine.Pipelined: identical state transitions
// to OnMessage, minus the signature checks Prevalidate already performed.
func (r *Replica) OnVerifiedMessage(now time.Duration, from types.ReplicaID, msg types.Message) []engine.Output {
	r.preverified = true
	r.outs = nil
	r.evNow = now
	r.handle(now, msg)
	r.preverified = false
	return r.take()
}

// checkSigs reports whether the current event must verify signatures itself.
func (r *Replica) checkSigs() bool { return r.cfg.VerifySignatures && !r.preverified }

// maxEchoDepth bounds echo unwrapping. Honest replicas wrap a base message
// exactly once (echo() never re-wraps an echo), so anything nested deeper is
// adversarial; an explicit cap keeps a maliciously nested chain from
// recursing the handler (or Prevalidate, on a transport reader goroutine)
// into a stack overflow.
const maxEchoDepth = 4

// unwrapEcho strips up to maxEchoDepth relay wrappers, returning nil for
// chains that are empty or nested beyond the cap.
func unwrapEcho(msg types.Message) types.Message {
	for depth := 0; ; depth++ {
		e, ok := msg.(*types.Echo)
		if !ok {
			return msg
		}
		if e.Inner == nil || depth >= maxEchoDepth {
			return nil
		}
		msg = e.Inner
	}
}

func (r *Replica) handle(now time.Duration, msg types.Message) {
	// Relayed messages are processed through the same paths as direct ones;
	// the dedup sets prevent loops and double-counting.
	switch m := unwrapEcho(msg).(type) {
	case *types.Proposal:
		r.onProposal(now, m)
	case *types.VoteMsg:
		r.onVote(now, m.Vote)
	case *types.StateSyncRequest:
		r.onStateSyncRequest(m)
	case *types.StateSyncResponse:
		r.onStateSyncResponse(m)
	}
}

// take drains the output buffer, flushing staged journal records first so
// nothing the event produced leaves before its durable state (see the
// DiemBFT engine's take for the contract).
func (r *Replica) take() []engine.Output {
	if r.journal != nil {
		if err := r.journal.Flush(); err != nil {
			panic(fmt.Sprintf("streamlet: wal flush: %v", err))
		}
	}
	outs := r.outs
	r.outs = nil
	return outs
}

func (r *Replica) journalBlock(b *types.Block) {
	if r.journal != nil && !r.restoring {
		_ = r.journal.AppendBlock(b) // errors surface at the take() flush
	}
}

// onStateSyncRequest serves the catch-up protocol (internal/statesync).
func (r *Replica) onStateSyncRequest(m *types.StateSyncRequest) {
	if m.Sender == r.cfg.ID {
		return
	}
	if resp := statesync.Serve(r.store, m, r.cfg.ID, statesync.DefaultMaxBlocks); resp != nil {
		r.outs = append(r.outs, engine.Send{To: m.Sender, Msg: resp})
	}
}

// onStateSyncResponse installs a catch-up segment: blocks are journaled,
// certificates feed the longest-certified-chain state and the tracker, and
// the commit rule is re-run over every newly certified block.
func (r *Replica) onStateSyncResponse(m *types.StateSyncResponse) {
	ap := statesync.Applier{
		Store:  r.store,
		Quorum: r.cfg.quorum(),
		OnInstall: func(b *types.Block) {
			r.seenProp[b.ID()] = true
			r.journalBlock(b)
			r.tryExecute(b)
		},
		OnQC:     r.afterCert,
		OnHighQC: r.onHighCert,
	}
	if r.cfg.VerifySignatures {
		ap.VerifyQC = func(qc *types.QC) error {
			if r.cfg.Obs != nil {
				start := time.Now()
				defer func() { r.cfg.Obs.ObserveVerifyBatch(time.Since(start)) }()
			}
			return crypto.VerifyQC(r.cfg.Verifier, qc, r.cfg.quorum())
		}
	}
	_, _ = ap.Apply(m)
}

// afterCert absorbs an embedded justify certificate the applier already
// registered: longest-certified-chain state, endorsement tracker, commit
// rule. No journaling — the block that carried the QC was journaled.
func (r *Replica) afterCert(qc *types.QC) {
	b := r.store.Block(qc.Block)
	if b == nil {
		return
	}
	r.cfg.Obs.OnQCObserved(b, r.evNow)
	if b.Height > r.maxCertH {
		r.maxCertH = b.Height
	}
	if r.tracker != nil {
		r.tracker.OnQC(qc)
	}
	r.checkCommit(b)
}

// onHighCert registers the responder's standalone high QC; since no
// journaled block embeds it, the certificate record goes to the journal
// itself (once, on improvement).
func (r *Replica) onHighCert(qc *types.QC) {
	b, improved, err := r.store.RegisterQC(qc)
	if err != nil {
		return
	}
	if !improved {
		r.checkCommit(b)
		return
	}
	if r.journal != nil && !r.restoring {
		_ = r.journal.AppendQC(qc)
	}
	r.afterCert(qc)
}

// echo relays a first-seen message to everyone (Figure 10's message echo
// mechanism).
func (r *Replica) echo(msg types.Message) {
	if r.cfg.DisableEcho {
		return
	}
	r.outs = append(r.outs, engine.Broadcast{Msg: &types.Echo{Inner: msg, Relayer: r.cfg.ID}})
}

// --- proposing ---

// tip returns the deterministic tip of the longest certified chain: highest
// certified height, ties broken by smallest round then block ID.
func (r *Replica) tip() *types.Block {
	var best *types.Block
	for _, b := range r.certifiedAt(r.maxCertH) {
		if best == nil || b.Round < best.Round ||
			(b.Round == best.Round && lessID(b.ID(), best.ID())) {
			best = b
		}
	}
	return best
}

func lessID(a, b types.BlockID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// certifiedAt returns all certified blocks at height h.
func (r *Replica) certifiedAt(h types.Height) []*types.Block {
	var out []*types.Block
	var walk func(b *types.Block)
	walk = func(b *types.Block) {
		if b.Height == h {
			if r.store.IsCertified(b.ID()) {
				out = append(out, b)
			}
			return
		}
		r.store.VisitChildren(b.ID(), func(c *types.Block) bool {
			if r.store.IsCertified(c.ID()) {
				walk(c)
			}
			return true
		})
	}
	walk(r.store.Genesis())
	return out
}

func (r *Replica) maybePropose(now time.Duration) {
	if pacemaker.Leader(r.round, r.cfg.N) != r.cfg.ID {
		return
	}
	parent := r.tip()
	if parent == nil {
		return
	}
	var payload types.Payload
	if r.cfg.PayloadNow != nil {
		payload = r.cfg.PayloadNow(r.round, now)
	} else if r.cfg.Payload != nil {
		payload = r.cfg.Payload(r.round)
	}
	qc := r.store.QCFor(parent.ID())
	b := types.NewBlock(parent.ID(), qc, r.round, parent.Height+1, r.cfg.ID, int64(now), payload, nil)
	p := &types.Proposal{Block: b, Round: r.round, Sender: r.cfg.ID}
	p.Signature = r.cfg.Signer.Sign(p.SigningPayload())
	// Journal own proposals before they can leave (see the DiemBFT engine).
	r.journalBlock(b)
	r.cfg.Obs.OnProposed(b, now)
	r.outs = append(r.outs, engine.Broadcast{Msg: p, SelfDeliver: true})
}

// --- proposal handling ---

func (r *Replica) onProposal(now time.Duration, p *types.Proposal) {
	if p.Block == nil || r.seenProp[p.Block.ID()] {
		return
	}
	if !r.validProposal(p) {
		return
	}
	r.seenProp[p.Block.ID()] = true
	r.echo(p)
	if !r.store.Has(p.Block.Parent) {
		r.orphans[p.Block.Parent] = append(r.orphans[p.Block.Parent], p)
		return
	}
	r.acceptProposal(now, p)
}

func (r *Replica) validProposal(p *types.Proposal) bool {
	if p.Block.Round != p.Round || p.Block.Proposer != p.Sender {
		return false
	}
	if w := r.cfg.ProposalWindow; w > 0 && p.Round > r.round+w {
		// Bounded future window: an honest leader's proposal is at most a
		// clock skew ahead of our lock-step slot; a far-future round number
		// is spam angling for unbounded orphan buffering.
		r.cfg.Obs.OnRoundEntryRejected(obs.ReasonFutureWindow)
		return false
	}
	if pacemaker.Leader(p.Round, r.cfg.N) != p.Sender {
		return false
	}
	if r.checkSigs() && !r.cfg.Verifier.Verify(p.Sender, p.SigningPayload(), p.Signature) {
		return false
	}
	return true
}

func (r *Replica) acceptProposal(now time.Duration, p *types.Proposal) {
	b := p.Block
	if err := r.store.Insert(b); err != nil {
		return
	}
	if b.Proposer != r.cfg.ID {
		// Own blocks were journaled at propose time.
		r.journalBlock(b)
	}
	r.cfg.Obs.OnBlockSeen(b, now)
	r.tryExecute(b)
	r.maybeVote(b)
	r.tryCertify(b)
	if kids := r.orphans[b.ID()]; len(kids) > 0 {
		delete(r.orphans, b.ID())
		for _, kid := range kids {
			r.acceptProposal(now, kid)
		}
	}
}

// maybeVote applies the Streamlet voting rule: first proposal of the
// current round by its leader, extending a longest certified chain.
func (r *Replica) maybeVote(b *types.Block) {
	if b.Round != r.round || r.votedRound[r.round] {
		return
	}
	parent := r.store.Block(b.Parent)
	if parent == nil || !r.store.IsCertified(parent.ID()) || parent.Height != r.maxCertH {
		return
	}
	var appRoot [32]byte
	if r.cfg.App != nil {
		// Execute before voting; refuse unexecutable blocks and proposals
		// whose justify certificate disagrees with our own execution of the
		// parent (state-fork detection, as in the DiemBFT engine).
		root, err := r.executeBlock(b)
		if err != nil {
			return
		}
		if b.Justify != nil && len(b.Justify.Votes) > 0 {
			if parentRoot, known := r.cfg.App.Root(b.Parent); known && b.Justify.AppHash() != parentRoot {
				r.cfg.Obs.OnAppHashMismatch()
				return
			}
		}
		appRoot = root
	}
	v := types.Vote{
		Block:   b.ID(),
		Round:   b.Round,
		Height:  b.Height,
		Voter:   r.cfg.ID,
		AppHash: appRoot,
		// SFT-Streamlet: the marker field carries the height marker.
		Marker: types.Round(r.history.HeightMarker(b)),
	}
	r.sigScratch = v.AppendSigningPayload(r.sigScratch[:0])
	v.Signature = r.cfg.Signer.Sign(r.sigScratch)
	// The vote record is flushed by take() before the broadcast leaves.
	if r.journal != nil && !r.restoring {
		_ = r.journal.AppendVote(&v)
	}
	r.votedRound[r.round] = true
	r.history.RecordVote(b)
	r.cfg.Obs.OnVoted(b, r.evNow)
	r.outs = append(r.outs, engine.Broadcast{Msg: &types.VoteMsg{Vote: v}, SelfDeliver: true})
}

// --- votes and certification ---

func (r *Replica) onVote(now time.Duration, v types.Vote) {
	if r.votes[v.Block].Has(v.Voter) {
		return
	}
	if r.checkSigs() && crypto.VerifyVote(r.cfg.Verifier, v) != nil {
		return
	}
	if !r.voteRootOK(&v) {
		return
	}
	set, ok := r.votes[v.Block]
	if !ok {
		set = &core.VoteSet{}
		r.votes[v.Block] = set
	}
	set.Add(v)
	r.echo(&types.VoteMsg{Vote: v})
	if b := r.store.Block(v.Block); b != nil {
		r.tryCertify(b)
	}
}

// voteRootOK filters collected votes by execution root (see the DiemBFT
// engine's voteRootOK): with the app on, only votes matching this replica's
// own execution of the block are credited; votes for still-unknown blocks
// pass provisionally and are re-judged in tryCertify. With the app off,
// AppHash-bearing votes are alien traffic and dropped.
func (r *Replica) voteRootOK(v *types.Vote) bool {
	if r.cfg.App == nil {
		return !v.HasAppHash()
	}
	b := r.store.Block(v.Block)
	if b == nil {
		return true
	}
	root, err := r.executeBlock(b)
	return err == nil && v.AppHash == root
}

func (r *Replica) tryCertify(b *types.Block) {
	id := b.ID()
	collected := r.votes[id]
	if collected.Len() < r.cfg.quorum() || r.store.IsCertified(id) {
		return
	}
	// Ascending voter order keeps QC hashes byte-identical to the map-based
	// collection this replaced.
	votes := collected.Sorted()
	if r.cfg.App != nil {
		// Re-judge provisionally accepted votes against our own execution
		// and certify only from root-agreeing ones (see the DiemBFT engine's
		// formQC).
		root, err := r.executeBlock(b)
		if err != nil {
			return
		}
		kept := votes[:0]
		for _, v := range votes {
			if v.AppHash == root {
				kept = append(kept, v)
			}
		}
		if votes = kept; len(votes) < r.cfg.quorum() {
			return
		}
	}
	qc := &types.QC{Block: id, Round: b.Round, Height: b.Height, Votes: votes}
	if r.aggregate {
		// Compact before registering: stored, journaled and echoed forms are
		// all the aggregated one. An aggregation error (unreachable with a
		// well-formed ring) leaves the still-valid vector form in place.
		_ = crypto.AggregateQC(r.cfg.Verifier, qc)
	}
	_, improved, err := r.store.RegisterQC(qc)
	if err != nil {
		return
	}
	if improved && r.journal != nil && !r.restoring {
		// Streamlet certificates are formed from the local vote set and not
		// embedded in any journaled block until a child extends them.
		_ = r.journal.AppendQC(qc)
	}
	if improved {
		r.cfg.Obs.OnQCFormed(b, r.evNow)
	}
	// Locking rule: the longest certified chain may have grown.
	if b.Height > r.maxCertH {
		r.maxCertH = b.Height
	}
	if r.tracker != nil {
		r.tracker.OnQC(qc)
	}
	r.checkCommit(b)
}

// checkCommit looks for three adjacent certified blocks with consecutive
// rounds around the newly certified block and commits the middle one and
// its ancestors.
func (r *Replica) checkCommit(b *types.Block) {
	// b can be the first, middle or last block of the 3-chain.
	candidates := []*types.Block{b}
	if p := r.store.Parent(b.ID()); p != nil {
		candidates = append(candidates, p)
	}
	r.store.VisitChildren(b.ID(), func(c *types.Block) bool {
		candidates = append(candidates, c)
		return true
	})
	for _, mid := range candidates {
		p := r.store.Parent(mid.ID())
		if p == nil || !r.store.IsCertified(p.ID()) || p.Round+1 != mid.Round {
			continue
		}
		if !r.store.IsCertified(mid.ID()) {
			continue
		}
		r.store.VisitChildren(mid.ID(), func(c *types.Block) bool {
			if r.store.IsCertified(c.ID()) && c.Round == mid.Round+1 {
				r.commitTo(mid)
				return false
			}
			return true
		})
	}
}

func (r *Replica) commitTo(b *types.Block) {
	if b.Height <= r.committedH {
		return
	}
	chain := r.store.ChainBetween(r.lastCommitted, b.ID())
	if chain == nil {
		return
	}
	for _, blk := range chain {
		if r.cfg.App != nil {
			if err := r.cfg.App.OnCommit(blk); err != nil {
				// Certified state this replica cannot reproduce: its execution
				// state is corrupt, and crash-stop beats serving divergence
				// (same contract as a WAL flush failure).
				panic(fmt.Sprintf("streamlet: app commit: %v", err))
			}
		}
		r.outs = append(r.outs, engine.Commit{Block: blk})
		r.cfg.Obs.OnCommit(blk, r.evNow)
	}
	r.lastCommitted = b.ID()
	r.committedH = b.Height
	if r.journal != nil && !r.restoring {
		_ = r.journal.AppendCommit(b.ID(), b.Height, b.Round)
	}
}

package streamlet_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/streamlet"
	"repro/internal/types"
)

func buildCluster(t testing.TB, n, f int, cfgMut func(id types.ReplicaID, c *streamlet.Config), simCfg simnet.Config) (*simnet.Sim, []*streamlet.Replica) {
	t.Helper()
	ring, err := crypto.NewKeyRing(n, 7, crypto.SchemeSim)
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}
	simCfg.N = n
	if simCfg.Latency == nil {
		simCfg.Latency = &simnet.UniformModel{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond}
	}
	sim := simnet.New(simCfg)
	replicas := make([]*streamlet.Replica, n)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		cfg := streamlet.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			Delta:            20 * time.Millisecond,
			SFT:              true,
		}
		if cfgMut != nil {
			cfgMut(id, &cfg)
		}
		rep, err := streamlet.New(cfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		replicas[i] = rep
		sim.SetEngine(id, rep)
	}
	return sim, replicas
}

func TestStreamletCommits(t *testing.T) {
	commits := make(map[types.ReplicaID][]*types.Block)
	simCfg := simnet.Config{
		Seed: 11,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			commits[rep] = append(commits[rep], b)
		},
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(4 * time.Second)

	if len(commits) != 4 {
		t.Fatalf("only %d replicas committed", len(commits))
	}
	ref := commits[0]
	if len(ref) < 10 {
		t.Fatalf("too few commits: %d", len(ref))
	}
	for id := types.ReplicaID(1); id < 4; id++ {
		other := commits[id]
		for i := 0; i < min(len(ref), len(other)); i++ {
			if ref[i].ID() != other[i].ID() {
				t.Fatalf("divergent commit at %d: %v vs %v", i, ref[i], other[i])
			}
		}
	}
	t.Logf("streamlet committed %d blocks", len(ref))
}

func TestStreamletStrengthGrows(t *testing.T) {
	best := make(map[types.BlockID]int)
	simCfg := simnet.Config{
		Seed: 12,
		OnStrength: func(rep types.ReplicaID, now time.Duration, b *types.Block, x int) {
			if rep == 0 && x > best[b.ID()] {
				best[b.ID()] = x
			}
		},
	}
	sim, _ := buildCluster(t, 4, 1, nil, simCfg)
	sim.Run(4 * time.Second)

	reached := 0
	for _, x := range best {
		if x == 2 { // 2f with f=1
			reached++
		}
	}
	if reached < 5 {
		t.Fatalf("only %d blocks reached 2f-strong (tracked %d)", reached, len(best))
	}
}

func TestStreamletEchoDisabled(t *testing.T) {
	var committed int
	simCfg := simnet.Config{
		Seed: 13,
		OnCommit: func(rep types.ReplicaID, now time.Duration, b *types.Block) {
			if rep == 2 {
				committed++
			}
		},
	}
	sim, _ := buildCluster(t, 7, 2, func(id types.ReplicaID, c *streamlet.Config) {
		c.DisableEcho = true
	}, simCfg)
	sim.Run(4 * time.Second)
	if committed < 10 {
		t.Fatalf("echo-less cluster committed only %d blocks", committed)
	}
}

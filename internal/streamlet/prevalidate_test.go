package streamlet_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/streamlet"
	"repro/internal/types"
)

func prevalidateReplica(t *testing.T, ring *crypto.KeyRing) *streamlet.Replica {
	t.Helper()
	rep, err := streamlet.New(streamlet.Config{
		ID: 1, N: 4, F: 1,
		Signer:           ring.Signer(1),
		Verifier:         ring,
		VerifySignatures: true,
		Delta:            50 * time.Millisecond,
		SFT:              true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStreamletPrevalidate covers the Streamlet stateless stage: proposals
// and votes directly, and — the Streamlet-specific part — recursively
// through the echo relay wrapper, which carries the inner message's original
// signature.
func TestStreamletPrevalidate(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := prevalidateReplica(t, ring)
	rep.Init(0)

	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 5, types.Payload{}, nil)
	p := &types.Proposal{Block: b, Round: 1, Sender: 0}
	p.Signature = ring.Signer(0).Sign(p.SigningPayload())
	if err := rep.Prevalidate(0, p); err != nil {
		t.Fatalf("genuine proposal rejected: %v", err)
	}

	forged := &types.Proposal{Block: b, Round: 1, Sender: 0}
	forged.Signature = ring.Signer(2).Sign(forged.SigningPayload())
	if err := rep.Prevalidate(0, forged); err == nil {
		t.Fatal("forged proposal passed prevalidation")
	}

	v := types.Vote{Block: b.ID(), Round: 1, Height: 1, Voter: 2}
	v.Signature = ring.Signer(2).Sign(v.SigningPayload())
	if err := rep.Prevalidate(2, &types.VoteMsg{Vote: v}); err != nil {
		t.Fatalf("genuine vote rejected: %v", err)
	}

	// Echoes relay the inner message with its original signature: a genuine
	// inner vote passes regardless of relayer, a tampered one fails.
	echo := &types.Echo{Inner: &types.VoteMsg{Vote: v}, Relayer: 3}
	if err := rep.Prevalidate(3, echo); err != nil {
		t.Fatalf("genuine echoed vote rejected: %v", err)
	}
	bad := v
	bad.Marker = 7
	badEcho := &types.Echo{Inner: &types.VoteMsg{Vote: bad}, Relayer: 3}
	if err := rep.Prevalidate(3, badEcho); err == nil {
		t.Fatal("tampered echoed vote passed prevalidation")
	}
	if err := rep.Prevalidate(3, &types.Echo{Relayer: 3}); err == nil {
		t.Fatal("echo without inner message passed prevalidation")
	}
}

// TestEchoNestingBounded pins the depth cap: a maliciously nested echo chain
// is rejected by prevalidation and ignored by the state stage, in both cases
// without recursing the stack.
func TestEchoNestingBounded(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	rep := prevalidateReplica(t, ring)
	rep.Init(0)

	v := types.Vote{Round: 1, Voter: 2}
	v.Signature = ring.Signer(2).Sign(v.SigningPayload())
	var msg types.Message = &types.VoteMsg{Vote: v}
	for i := 0; i < 100000; i++ {
		msg = &types.Echo{Inner: msg, Relayer: 3}
	}
	if err := rep.Prevalidate(3, msg); err == nil {
		t.Fatal("deeply nested echo passed prevalidation")
	}
	if outs := rep.OnMessage(0, 3, msg); len(outs) != 0 {
		t.Fatalf("deeply nested echo produced %d outputs", len(outs))
	}
	// A single wrap — the honest shape — still works through both stages.
	one := &types.Echo{Inner: &types.VoteMsg{Vote: v}, Relayer: 3}
	if err := rep.Prevalidate(3, one); err != nil {
		t.Fatalf("singly wrapped echo rejected: %v", err)
	}
}

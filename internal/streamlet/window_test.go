package streamlet_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/obs"
	"repro/internal/streamlet"
	"repro/internal/types"
)

// TestProposalWindowBoundsFutureRounds pins the Streamlet analogue of the
// active pacemaker's future window: with ProposalWindow set, a proposal
// claiming a round far beyond the local lock-step slot is rejected at both
// the prevalidate stage (before signature work) and the state stage, while
// in-window proposals still flow. The zero-value baseline stays unbounded.
func TestProposalWindowBoundsFutureRounds(t *testing.T) {
	ring, _ := crypto.NewKeyRing(4, 1, crypto.SchemeSim)
	sink := obs.New(obs.Options{N: 4, F: 1})
	rep, err := streamlet.New(streamlet.Config{
		ID: 1, N: 4, F: 1,
		Signer:           ring.Signer(1),
		Verifier:         ring,
		VerifySignatures: true,
		Delta:            50 * time.Millisecond,
		SFT:              true,
		ProposalWindow:   4,
		Obs:              sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Init(0)

	g := types.Genesis()
	mk := func(round types.Round) *types.Proposal {
		leader := types.ReplicaID((uint64(round) - 1) % 4)
		b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), round, 1, leader, 5, types.Payload{}, nil)
		p := &types.Proposal{Block: b, Round: round, Sender: leader}
		p.Signature = ring.Signer(leader).Sign(p.SigningPayload())
		return p
	}

	far := mk(100)
	if err := rep.Prevalidate(far.Sender, far); err == nil {
		t.Fatal("far-future proposal passed prevalidation")
	}
	if outs := rep.OnMessage(0, far.Sender, far); len(outs) != 0 {
		t.Fatalf("far-future proposal produced %d outputs at the state stage", len(outs))
	}
	if sink.RoundEntryRejections() < 2 {
		t.Fatalf("window rejections not counted (got %d)", sink.RoundEntryRejections())
	}

	near := mk(1)
	if err := rep.Prevalidate(near.Sender, near); err != nil {
		t.Fatalf("in-window proposal rejected at prevalidation: %v", err)
	}
	if outs := rep.OnMessage(0, near.Sender, near); len(outs) == 0 {
		t.Fatal("in-window proposal produced no outputs")
	}
}

// Package lightclient implements Section 5's "Proving Strong Commit to
// Light Clients": block proposals carry a Log of strong-commit level
// updates; once a proposal is certified (2f+1 strong-votes), at least one
// honest replica vouches for every Log entry provided the number of
// Byzantine faults does not exceed 2f (the maximum resilience SFT provides),
// so a client that verifies the certificate can accept the recorded levels
// without running the protocol or storing the chain.
package lightclient

import (
	"errors"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/types"
)

// ErrNotCertified is returned when the supplied QC does not certify the
// supplied block.
var ErrNotCertified = errors.New("lightclient: qc does not certify block")

// Client tracks strong-commit levels proven by certified commit Logs.
type Client struct {
	verifier crypto.Verifier
	quorum   int

	levels  map[types.BlockID]int
	heights map[types.BlockID]types.Height
	// maxLevel remembers the strongest proven commit for quick queries.
	maxLevel int
	maxBlock types.BlockID
}

// New creates a light client for an n = 3f+1 system.
func New(verifier crypto.Verifier, f int) *Client {
	return &Client{
		verifier: verifier,
		quorum:   2*f + 1,
		levels:   make(map[types.BlockID]int),
		heights:  make(map[types.BlockID]types.Height),
		maxLevel: -1,
	}
}

// ProcessCertified ingests a block together with a quorum certificate for
// it (obtained, e.g., from the justify field of any child block). The
// block's CommitLog entries become proven strong-commit levels.
func (c *Client) ProcessCertified(b *types.Block, qc *types.QC) error {
	if qc == nil || qc.Block != b.ID() {
		return ErrNotCertified
	}
	if err := crypto.VerifyQC(c.verifier, qc, c.quorum); err != nil {
		return fmt.Errorf("lightclient: %w", err)
	}
	for _, rec := range b.CommitLog {
		c.record(rec)
	}
	return nil
}

// record applies one proven Log entry. Updates are strictly monotone per
// block: a duplicate or out-of-order entry with a level at or below what is
// already proven changes nothing — in particular it cannot overwrite the
// height recorded for the stronger entry.
func (c *Client) record(rec types.StrengthRecord) bool {
	if old, ok := c.levels[rec.Block]; ok && rec.X <= old {
		return false
	}
	c.levels[rec.Block] = rec.X
	c.heights[rec.Block] = rec.Height
	if rec.X > c.maxLevel {
		c.maxLevel = rec.X
		c.maxBlock = rec.Block
	}
	return true
}

// StrengthOf returns the proven strong-commit level of a block, or -1 if no
// certified Log entry mentions it.
func (c *Client) StrengthOf(id types.BlockID) int {
	if x, ok := c.levels[id]; ok {
		return x
	}
	return -1
}

// HeightOf returns the chain height a proven block was recorded at. The
// second result distinguishes "no certified Log entry mentions this block"
// from a legitimately recorded height (including genesis height 0).
func (c *Client) HeightOf(id types.BlockID) (types.Height, bool) {
	h, ok := c.heights[id]
	return h, ok
}

// Proven returns how many distinct blocks have proven strength levels.
func (c *Client) Proven() int { return len(c.levels) }

// Strongest returns the block with the highest proven level and that level,
// or a zero ID and -1 when nothing is proven yet.
func (c *Client) Strongest() (types.BlockID, int) { return c.maxBlock, c.maxLevel }

package lightclient_test

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/lightclient"
	"repro/internal/types"
)

type fixture struct {
	ring   *crypto.KeyRing
	client *lightclient.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ring, err := crypto.NewKeyRing(4, 11, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ring: ring, client: lightclient.New(ring, 1)}
}

// certifiedBlock builds a block carrying the given Log plus a genuine QC
// for it signed by the first `signers` replicas.
func (f *fixture) certifiedBlock(t *testing.T, log []types.StrengthRecord, signers int) (*types.Block, *types.QC) {
	t.Helper()
	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 0, types.Payload{}, log)
	votes := make([]types.Vote, signers)
	for i := 0; i < signers; i++ {
		v := types.Vote{Block: b.ID(), Round: 1, Height: 1, Voter: types.ReplicaID(i)}
		v.Signature = f.ring.Signer(types.ReplicaID(i)).Sign(v.SigningPayload())
		votes[i] = v
	}
	return b, &types.QC{Block: b.ID(), Round: 1, Height: 1, Votes: votes}
}

func TestAcceptsGenuineProof(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{42}
	log := []types.StrengthRecord{{Block: target, Height: 9, Round: 9, X: 2}}
	b, qc := f.certifiedBlock(t, log, 3)
	if err := f.client.ProcessCertified(b, qc); err != nil {
		t.Fatalf("genuine proof rejected: %v", err)
	}
	if got := f.client.StrengthOf(target); got != 2 {
		t.Fatalf("strength = %d, want 2", got)
	}
	if got, ok := f.client.HeightOf(target); !ok || got != 9 {
		t.Fatalf("height = %d, %v", got, ok)
	}
	blk, x := f.client.Strongest()
	if blk != target || x != 2 {
		t.Fatalf("strongest = %v/%d", blk, x)
	}
	if f.client.Proven() != 1 {
		t.Fatalf("proven = %d", f.client.Proven())
	}
}

func TestRejectsSubQuorumProof(t *testing.T) {
	f := newFixture(t)
	b, qc := f.certifiedBlock(t, []types.StrengthRecord{{Block: types.BlockID{1}, X: 2}}, 2)
	if err := f.client.ProcessCertified(b, qc); err == nil {
		t.Fatal("accepted proof with 2 < 2f+1 votes")
	}
	if f.client.Proven() != 0 {
		t.Fatal("rejected proof still recorded")
	}
}

func TestRejectsMismatchedQC(t *testing.T) {
	f := newFixture(t)
	b, _ := f.certifiedBlock(t, nil, 3)
	other, otherQC := f.certifiedBlock(t, []types.StrengthRecord{{Block: types.BlockID{1}, X: 2}}, 3)
	_ = other
	if err := f.client.ProcessCertified(b, otherQC); err == nil {
		t.Fatal("accepted QC for a different block")
	}
	if err := f.client.ProcessCertified(b, nil); err == nil {
		t.Fatal("accepted nil QC")
	}
}

func TestRejectsTamperedLog(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{7}
	b, qc := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, X: 1}}, 3)
	// Tamper with the log after certification: the block ID the votes
	// signed no longer matches.
	tampered := types.NewBlock(b.Parent, b.Justify, b.Round, b.Height, b.Proposer, b.Timestamp,
		b.Payload, []types.StrengthRecord{{Block: target, X: 2}})
	if err := f.client.ProcessCertified(tampered, qc); err == nil {
		t.Fatal("accepted tampered log")
	}
}

func TestLevelsAreMonotone(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{9}
	b1, qc1 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 1, X: 2}}, 3)
	if err := f.client.ProcessCertified(b1, qc1); err != nil {
		t.Fatal(err)
	}
	// A later proof with a lower level must not regress the record.
	b2, qc2 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 1, X: 1}}, 3)
	if err := f.client.ProcessCertified(b2, qc2); err != nil {
		t.Fatal(err)
	}
	if got := f.client.StrengthOf(target); got != 2 {
		t.Fatalf("level regressed to %d", got)
	}
}

// TestDuplicateEntryKeepsHeight is the PR-10 regression: a duplicate Log
// entry at a lower level used to slip past the `heights == 0` guard and
// overwrite the height recorded for the stronger entry.
func TestDuplicateEntryKeepsHeight(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{3}
	b1, qc1 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 12, X: 2}}, 3)
	if err := f.client.ProcessCertified(b1, qc1); err != nil {
		t.Fatal(err)
	}
	// Replay a weaker, out-of-order entry for the same block recorded at a
	// different (bogus) height. It must change nothing.
	b2, qc2 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 40, X: 1}}, 3)
	if err := f.client.ProcessCertified(b2, qc2); err != nil {
		t.Fatal(err)
	}
	if got, ok := f.client.HeightOf(target); !ok || got != 12 {
		t.Fatalf("height overwritten by weaker duplicate: %d, %v", got, ok)
	}
	if got := f.client.StrengthOf(target); got != 2 {
		t.Fatalf("level regressed to %d", got)
	}
	// A genuinely stronger entry still advances both level and height.
	b3, qc3 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 12, X: 3}}, 3)
	if err := f.client.ProcessCertified(b3, qc3); err != nil {
		t.Fatal(err)
	}
	if got := f.client.StrengthOf(target); got != 3 {
		t.Fatalf("level = %d, want 3", got)
	}
}

// TestOutOfOrderEntriesConverge feeds the same block's rises in descending
// order; the final state must match the ascending-order feed.
func TestOutOfOrderEntriesConverge(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{5}
	for _, x := range []int{3, 1, 2} {
		b, qc := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 4, X: x}}, 3)
		if err := f.client.ProcessCertified(b, qc); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.client.StrengthOf(target); got != 3 {
		t.Fatalf("level = %d, want 3", got)
	}
	if got, ok := f.client.HeightOf(target); !ok || got != 4 {
		t.Fatalf("height = %d, %v", got, ok)
	}
}

// TestHeightOfDistinguishesUnknown covers the (Height, bool) form: height 0
// is a legitimate recorded value, distinct from "never proven".
func TestHeightOfDistinguishesUnknown(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{8}
	if _, ok := f.client.HeightOf(target); ok {
		t.Fatal("unknown block reported as recorded")
	}
	b, qc := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 0, X: 1}}, 3)
	if err := f.client.ProcessCertified(b, qc); err != nil {
		t.Fatal(err)
	}
	if h, ok := f.client.HeightOf(target); !ok || h != 0 {
		t.Fatalf("height-0 entry not distinguishable: %d, %v", h, ok)
	}
}

func TestUnknownBlock(t *testing.T) {
	f := newFixture(t)
	if f.client.StrengthOf(types.BlockID{1}) != -1 {
		t.Fatal("unknown block has a strength")
	}
	if _, x := f.client.Strongest(); x != -1 {
		t.Fatal("empty client has a strongest block")
	}
}

package lightclient_test

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/lightclient"
	"repro/internal/types"
)

type fixture struct {
	ring   *crypto.KeyRing
	client *lightclient.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ring, err := crypto.NewKeyRing(4, 11, crypto.SchemeSim)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ring: ring, client: lightclient.New(ring, 1)}
}

// certifiedBlock builds a block carrying the given Log plus a genuine QC
// for it signed by the first `signers` replicas.
func (f *fixture) certifiedBlock(t *testing.T, log []types.StrengthRecord, signers int) (*types.Block, *types.QC) {
	t.Helper()
	g := types.Genesis()
	b := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 0, types.Payload{}, log)
	votes := make([]types.Vote, signers)
	for i := 0; i < signers; i++ {
		v := types.Vote{Block: b.ID(), Round: 1, Height: 1, Voter: types.ReplicaID(i)}
		v.Signature = f.ring.Signer(types.ReplicaID(i)).Sign(v.SigningPayload())
		votes[i] = v
	}
	return b, &types.QC{Block: b.ID(), Round: 1, Height: 1, Votes: votes}
}

func TestAcceptsGenuineProof(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{42}
	log := []types.StrengthRecord{{Block: target, Height: 9, Round: 9, X: 2}}
	b, qc := f.certifiedBlock(t, log, 3)
	if err := f.client.ProcessCertified(b, qc); err != nil {
		t.Fatalf("genuine proof rejected: %v", err)
	}
	if got := f.client.StrengthOf(target); got != 2 {
		t.Fatalf("strength = %d, want 2", got)
	}
	if got := f.client.HeightOf(target); got != 9 {
		t.Fatalf("height = %d", got)
	}
	blk, x := f.client.Strongest()
	if blk != target || x != 2 {
		t.Fatalf("strongest = %v/%d", blk, x)
	}
	if f.client.Proven() != 1 {
		t.Fatalf("proven = %d", f.client.Proven())
	}
}

func TestRejectsSubQuorumProof(t *testing.T) {
	f := newFixture(t)
	b, qc := f.certifiedBlock(t, []types.StrengthRecord{{Block: types.BlockID{1}, X: 2}}, 2)
	if err := f.client.ProcessCertified(b, qc); err == nil {
		t.Fatal("accepted proof with 2 < 2f+1 votes")
	}
	if f.client.Proven() != 0 {
		t.Fatal("rejected proof still recorded")
	}
}

func TestRejectsMismatchedQC(t *testing.T) {
	f := newFixture(t)
	b, _ := f.certifiedBlock(t, nil, 3)
	other, otherQC := f.certifiedBlock(t, []types.StrengthRecord{{Block: types.BlockID{1}, X: 2}}, 3)
	_ = other
	if err := f.client.ProcessCertified(b, otherQC); err == nil {
		t.Fatal("accepted QC for a different block")
	}
	if err := f.client.ProcessCertified(b, nil); err == nil {
		t.Fatal("accepted nil QC")
	}
}

func TestRejectsTamperedLog(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{7}
	b, qc := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, X: 1}}, 3)
	// Tamper with the log after certification: the block ID the votes
	// signed no longer matches.
	tampered := types.NewBlock(b.Parent, b.Justify, b.Round, b.Height, b.Proposer, b.Timestamp,
		b.Payload, []types.StrengthRecord{{Block: target, X: 2}})
	if err := f.client.ProcessCertified(tampered, qc); err == nil {
		t.Fatal("accepted tampered log")
	}
}

func TestLevelsAreMonotone(t *testing.T) {
	f := newFixture(t)
	target := types.BlockID{9}
	b1, qc1 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 1, X: 2}}, 3)
	if err := f.client.ProcessCertified(b1, qc1); err != nil {
		t.Fatal(err)
	}
	// A later proof with a lower level must not regress the record.
	b2, qc2 := f.certifiedBlock(t, []types.StrengthRecord{{Block: target, Height: 1, X: 1}}, 3)
	if err := f.client.ProcessCertified(b2, qc2); err != nil {
		t.Fatal(err)
	}
	if got := f.client.StrengthOf(target); got != 2 {
		t.Fatalf("level regressed to %d", got)
	}
}

func TestUnknownBlock(t *testing.T) {
	f := newFixture(t)
	if f.client.StrengthOf(types.BlockID{1}) != -1 {
		t.Fatal("unknown block has a strength")
	}
	if _, x := f.client.Strongest(); x != -1 {
		t.Fatal("empty client has a strongest block")
	}
}

package tcpnet_test

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/tcpnet"
	"repro/internal/types"
)

func TestUnknownPeerRejected(t *testing.T) {
	nt, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	if err := nt.Send(9, &types.VoteMsg{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestSpoofedSenderDropped(t *testing.T) {
	tcpnet.RegisterMessages()
	nt, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	// Handshake as replica 2, then claim frames are from replica 3.
	conn, err := net.Dial("tcp", nt.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	type hello struct{ From types.ReplicaID }
	type envelope struct {
		From types.ReplicaID
		Msg  types.Message
	}
	if err := enc.Encode(hello{From: 2}); err != nil {
		t.Fatal(err)
	}
	// Spoofed frame: must be dropped.
	if err := enc.Encode(envelope{From: 3, Msg: &types.VoteMsg{Vote: types.Vote{Round: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Genuine frame: must arrive.
	if err := enc.Encode(envelope{From: 2, Msg: &types.VoteMsg{Vote: types.Vote{Round: 2}}}); err != nil {
		t.Fatal(err)
	}

	select {
	case in := <-nt.Recv():
		if in.From != 2 {
			t.Fatalf("received frame from %v", in.From)
		}
		if vm, ok := in.Msg.(*types.VoteMsg); !ok || vm.Vote.Round != 2 {
			t.Fatalf("wrong message surfaced: %v", in.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("genuine frame never arrived")
	}
	select {
	case in := <-nt.Recv():
		t.Fatalf("unexpected second frame: %+v", in)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestMessageRoundTripAllTypes(t *testing.T) {
	tcpnet.RegisterMessages()
	a, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tcpnet.Listen(tcpnet.Config{ID: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeers(map[types.ReplicaID]string{1: b.Addr().String()})

	g := types.Genesis()
	blk := types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), 1, 1, 0, 7,
		types.Payload{Txns: []types.Transaction{{Sender: 3, Seq: 4, Data: []byte("x")}}, Padding: 9},
		[]types.StrengthRecord{{Block: g.ID(), Height: 0, Round: 0, X: 2}})
	msgs := []types.Message{
		&types.Proposal{Block: blk, Round: 1, Sender: 0, Signature: []byte("s")},
		&types.VoteMsg{Vote: types.Vote{Block: blk.ID(), Round: 1, Voter: 0, Marker: 5}},
		&types.Timeout{Round: 2, HighQC: types.NewGenesisQC(g.ID()), Sender: 0},
		&types.Echo{Inner: &types.VoteMsg{Vote: types.Vote{Round: 3}}, Relayer: 0},
		&types.ExtraVote{Vote: types.Vote{Round: 4}, Leader: 0},
		&types.SyncRequest{Block: blk.ID(), Have: 1, Sender: 0},
		&types.SyncResponse{Blocks: []*types.Block{blk}, Sender: 0},
		&types.StateSyncRequest{Have: 3, Sender: 0},
		&types.StateSyncResponse{Blocks: []*types.Block{blk}, HighQC: types.NewGenesisQC(g.ID()), Sender: 0},
	}
	for _, m := range msgs {
		if err := a.Send(1, m); err != nil {
			t.Fatalf("send %T: %v", m, err)
		}
	}
	for i := range msgs {
		select {
		case in := <-b.Recv():
			if in.Msg.Type() != msgs[i].Type() {
				t.Fatalf("message %d: type %d, want %d", i, in.Msg.Type(), msgs[i].Type())
			}
			if p, ok := in.Msg.(*types.Proposal); ok {
				if p.Block.ID() != blk.ID() {
					t.Fatal("block hash changed across the wire")
				}
				if p.Block.Payload.Padding != 9 || len(p.Block.CommitLog) != 1 {
					t.Fatal("block fields lost across the wire")
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

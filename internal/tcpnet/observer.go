package tcpnet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/types"
)

// ObserverConfig describes a non-voting follower's view of the cluster: the
// identity it presents in handshakes (an ID outside the voting committee)
// and the replicas it attaches to.
type ObserverConfig struct {
	// ID is the observer's wire identity; it must not collide with a voting
	// replica ID (convention: committee N and up).
	ID types.ReplicaID
	// Upstreams maps replica IDs to dialable addresses. The observer keeps a
	// mirror connection to every upstream, reconnecting with backoff, so one
	// upstream crashing does not blind it.
	Upstreams map[types.ReplicaID]string
	// DialRetry is the pause between failed dials/reconnects (default 250ms).
	DialRetry time.Duration
	// Prevalidate, if non-nil, runs on every decoded frame on the upstream's
	// reader goroutine (wire it to engine.Pipelined.Prevalidate).
	Prevalidate func(from types.ReplicaID, msg types.Message) error
	// Obs, if non-nil, receives frame/byte counts per upstream.
	Obs *obs.Obs
}

// ObserverNet is the observer-side runtime.Transport: it dials the
// configured upstream replicas with an Observer handshake, receives mirrored
// consensus traffic from each, and can send catch-up requests back. Unlike
// Net it never listens — observers are pure clients of the consensus tier.
type ObserverNet struct {
	cfg  ObserverConfig
	recv chan runtime.Inbound

	mu      sync.Mutex
	conns   map[types.ReplicaID]*peerConn
	closed  bool
	closing chan struct{}
	wg      sync.WaitGroup
}

// DialObservers connects an observer to its upstreams. Connections are
// established (and re-established) in the background; the transport is
// usable immediately.
func DialObservers(cfg ObserverConfig) (*ObserverNet, error) {
	RegisterMessages()
	if len(cfg.Upstreams) == 0 {
		return nil, fmt.Errorf("tcpnet: observer needs at least one upstream")
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	o := &ObserverNet{
		cfg:     cfg,
		recv:    make(chan runtime.Inbound, 4096),
		conns:   make(map[types.ReplicaID]*peerConn),
		closing: make(chan struct{}),
	}
	for id, addr := range cfg.Upstreams {
		o.wg.Add(1)
		go o.upstreamLoop(id, addr)
	}
	return o, nil
}

// Recv implements runtime.Transport.
func (o *ObserverNet) Recv() <-chan runtime.Inbound { return o.recv }

// Send implements runtime.Transport: catch-up requests go to whichever
// upstream the engine addressed, provided its connection is currently up.
func (o *ObserverNet) Send(to types.ReplicaID, msg types.Message) error {
	o.mu.Lock()
	pc := o.conns[to]
	o.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("tcpnet: upstream %v not connected", to)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if err := pc.enc.Encode(envelope{From: o.cfg.ID, Msg: msg}); err != nil {
		return fmt.Errorf("tcpnet: observer send to %v: %w", to, err)
	}
	o.cfg.Obs.OnFrameOut(to, pc.cw.take())
	return nil
}

// Connected reports how many upstream connections are currently live.
func (o *ObserverNet) Connected() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.conns)
}

// Close implements runtime.Transport.
func (o *ObserverNet) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	close(o.closing)
	conns := o.conns
	o.conns = map[types.ReplicaID]*peerConn{}
	o.mu.Unlock()
	for _, pc := range conns {
		pc.mu.Lock()
		_ = pc.conn.Close()
		pc.mu.Unlock()
	}
	o.wg.Wait()
	close(o.recv)
	return nil
}

// upstreamLoop maintains one upstream connection for the observer's
// lifetime: dial, Observer handshake, drain mirrored frames, and on any
// failure tear down and retry after DialRetry. This is what makes observer
// restarts and upstream restarts self-healing.
func (o *ObserverNet) upstreamLoop(id types.ReplicaID, addr string) {
	defer o.wg.Done()
	for {
		select {
		case <-o.closing:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			if !o.pause() {
				return
			}
			continue
		}
		cw := &countWriter{w: conn}
		enc := gob.NewEncoder(cw)
		if err := enc.Encode(hello{From: o.cfg.ID, Observer: true}); err != nil {
			_ = conn.Close()
			if !o.pause() {
				return
			}
			continue
		}
		cw.take()
		pc := &peerConn{conn: conn, enc: enc, cw: cw}
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			_ = conn.Close()
			return
		}
		o.conns[id] = pc
		o.mu.Unlock()

		o.drain(id, conn)

		o.mu.Lock()
		if o.conns[id] == pc {
			delete(o.conns, id)
		}
		o.mu.Unlock()
		_ = conn.Close()
		if !o.pause() {
			return
		}
	}
}

// drain reads mirrored envelopes from one upstream until the connection
// fails. Frames keep their original From (an upstream relays other
// replicas' traffic), so there is no spoof check here — the observer's
// engine verifies every signature and certificate itself and trusts no
// sender identity.
func (o *ObserverNet) drain(upstream types.ReplicaID, conn net.Conn) {
	cr := &countReader{r: conn}
	dec := gob.NewDecoder(cr)
	for {
		var env envelope
		err := dec.Decode(&env)
		if err == nil {
			o.cfg.Obs.OnFrameIn(upstream, cr.take())
		}
		if err != nil {
			return
		}
		if env.Msg == nil {
			continue
		}
		verified := false
		if o.cfg.Prevalidate != nil {
			if err := o.cfg.Prevalidate(env.From, env.Msg); err != nil {
				o.cfg.Obs.OnPrevalidate(true)
				continue
			}
			o.cfg.Obs.OnPrevalidate(false)
			verified = true
		}
		select {
		case o.recv <- runtime.Inbound{From: env.From, Msg: env.Msg, Verified: verified}:
		case <-o.closing:
			return
		}
	}
}

// pause sleeps one retry interval; false means the transport is closing.
func (o *ObserverNet) pause() bool {
	select {
	case <-o.closing:
		return false
	case <-time.After(o.cfg.DialRetry):
		return true
	}
}

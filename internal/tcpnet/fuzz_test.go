package tcpnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/runtime"
	"repro/internal/types"
)

// FuzzServeFrames feeds raw attacker-controlled bytes to the TCP frame
// parser — the handshake + envelope stream every accepted connection runs —
// and pins that it never panics, never surfaces a frame whose sender
// differs from the handshake identity, and never delivers a nil message.
// The real listener gives each peer its own reader goroutine running
// exactly this loop, so these properties are the transport's whole
// anti-spoofing contract.
func FuzzServeFrames(f *testing.F) {
	RegisterMessages()

	// Seed corpus: a well-formed handshake followed by well-formed, spoofed
	// and nil-message envelopes, plus truncations and garbage.
	encode := func(vals ...any) []byte {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, v := range vals {
			if err := enc.Encode(v); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	var id types.BlockID
	id[0] = 1
	vote := &types.VoteMsg{Vote: types.Vote{Block: id, Round: 3, Voter: 2, Signature: []byte("s")}}
	valid := encode(hello{From: 2}, envelope{From: 2, Msg: vote})
	f.Add(valid)
	f.Add(encode(hello{From: 2}, envelope{From: 3, Msg: vote})) // spoofed
	f.Add(encode(hello{From: 0}))                               // self-handshake
	f.Add(encode(hello{From: 2}, envelope{From: 2}))            // nil message
	f.Add(valid[:len(valid)/2])                                 // truncated
	f.Add([]byte("not gob at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		n := &Net{
			cfg:     Config{ID: 0},
			recv:    make(chan runtime.Inbound, 4096),
			closing: make(chan struct{}),
		}
		// A prevalidation hook that rejects odd rounds exercises the
		// verified/dropped paths too.
		n.cfg.Prevalidate = func(from types.ReplicaID, msg types.Message) error {
			if vm, ok := msg.(*types.VoteMsg); ok && vm.Vote.Round%2 == 1 {
				return fmt.Errorf("odd round")
			}
			return nil
		}
		// Drain concurrently: an input decoding to more valid envelopes than
		// the channel buffers must not deadlock the parser (the real
		// transport always has a reader).
		done := make(chan []runtime.Inbound, 1)
		go func() {
			var got []runtime.Inbound
			for in := range n.recv {
				got = append(got, in)
			}
			done <- got
		}()
		n.serveFrames(gob.NewDecoder(bytes.NewReader(data)))
		close(n.recv)
		for _, in := range <-done {
			if in.Msg == nil {
				t.Fatal("nil message surfaced to the engine loop")
			}
			if in.From == 0 {
				t.Fatal("frame claiming to be from self surfaced")
			}
			if !in.Verified {
				t.Fatal("unverified frame surfaced despite a prevalidation hook")
			}
		}
		stats := n.FrameStats()
		if stats.Spoofed < 0 || stats.Malformed < 0 || stats.Prevalidated < 0 {
			t.Fatalf("negative frame stats: %+v", stats)
		}
	})
}

// FuzzServeFramesMultiPeer replays the same bytes through two parsers with
// different self-IDs: the spoofing filter must key on the handshake, not on
// absolute IDs.
func FuzzServeFramesMultiPeer(f *testing.F) {
	RegisterMessages()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	_ = enc.Encode(hello{From: 1})
	_ = enc.Encode(envelope{From: 1, Msg: &types.VoteMsg{Vote: types.Vote{Round: 2, Voter: 1}}})
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, self := range []types.ReplicaID{0, 1} {
			n := &Net{
				cfg:     Config{ID: self},
				recv:    make(chan runtime.Inbound, 4096),
				closing: make(chan struct{}),
			}
			done := make(chan []runtime.Inbound, 1)
			go func() {
				var got []runtime.Inbound
				for in := range n.recv {
					got = append(got, in)
				}
				done <- got
			}()
			n.serveFrames(gob.NewDecoder(bytes.NewReader(data)))
			close(n.recv)
			for _, in := range <-done {
				if in.From == self {
					t.Fatalf("self=%d surfaced a frame claiming self origin", self)
				}
			}
		}
	})
}

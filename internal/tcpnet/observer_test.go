package tcpnet_test

import (
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/statesync"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testBlock(round types.Round) *types.Block {
	g := types.Genesis()
	return types.NewBlock(g.ID(), types.NewGenesisQC(g.ID()), round, types.Height(round), 0, 0, types.Payload{}, nil)
}

// recvMsg drains ch until a message of the wanted dynamic type arrives.
func recvMsg[T types.Message](t *testing.T, ch <-chan runtime.Inbound) (types.ReplicaID, T) {
	t.Helper()
	for {
		select {
		case in := <-ch:
			if m, ok := in.Msg.(T); ok {
				return in.From, m
			}
		case <-time.After(10 * time.Second):
			var zero T
			t.Fatalf("no %T delivered", zero)
		}
	}
}

// TestObserverMirrorAndRestrictions covers the wire contract between a
// replica and an attached observer: certified-chain traffic (peer frames and
// the replica's own broadcasts) is mirrored out, catch-up requests are let
// in, and anything resembling a consensus action from the observer is
// dropped and counted — an observer's vote power is structurally zero.
func TestObserverMirrorAndRestrictions(t *testing.T) {
	nt0, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt0.Close()
	nt1, err := tcpnet.Listen(tcpnet.Config{ID: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt1.Close()
	peers := map[types.ReplicaID]string{0: nt0.Addr().String(), 1: nt1.Addr().String()}
	nt0.SetPeers(peers)
	nt1.SetPeers(peers)

	obs, err := tcpnet.DialObservers(tcpnet.ObserverConfig{
		ID:        4,
		Upstreams: map[types.ReplicaID]string{0: nt0.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	waitCond(t, "observer handshake", func() bool {
		return obs.Connected() == 1 && nt0.Observers() == 1
	})

	// A peer frame arriving at the replica is mirrored to the observer with
	// its original sender identity.
	prop := &types.Proposal{Block: testBlock(1), Round: 1, Sender: 1}
	if err := nt1.Send(0, prop); err != nil {
		t.Fatal(err)
	}
	if from, _ := recvMsg[*types.Proposal](t, nt0.Recv()); from != 1 {
		t.Fatalf("replica got proposal from %d, want 1", from)
	}
	if from, got := recvMsg[*types.Proposal](t, obs.Recv()); from != 1 || got.Round != 1 {
		t.Fatalf("observer mirror: from=%d round=%d, want peer frame from 1", from, got.Round)
	}

	// The replica's own broadcast output reaches the observer via FeedLocal
	// (it never crosses the replica's inbound path).
	own := &types.Proposal{Block: testBlock(2), Round: 2, Sender: 0}
	nt0.FeedLocal(own)
	if from, got := recvMsg[*types.Proposal](t, obs.Recv()); from != 0 || got.Round != 2 {
		t.Fatalf("observer mirror: from=%d round=%d, want local frame from 0", from, got.Round)
	}

	// An observer-sent vote must be dropped and counted, never delivered.
	vote := &types.VoteMsg{Vote: types.Vote{Block: testBlock(1).ID(), Round: 1, Voter: 4}}
	if err := obs.Send(0, vote); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "restricted frame count", func() bool {
		return nt0.FrameStats().Restricted == 1
	})

	// A catch-up request is whitelisted through with the observer's identity.
	if err := obs.Send(0, statesync.NewRequest(0, 4)); err != nil {
		t.Fatal(err)
	}
	if from, _ := recvMsg[*types.StateSyncRequest](t, nt0.Recv()); from != 4 {
		t.Fatalf("state-sync request from %d, want observer 4", from)
	}
	select {
	case in := <-nt0.Recv():
		if _, ok := in.Msg.(*types.VoteMsg); ok {
			t.Fatal("observer vote reached the replica's event loop")
		}
	default:
	}
}

// TestObserverSpoofRejected: an "observer" handshake claiming a configured
// peer identity is a spoof attempt and the connection is dropped.
func TestObserverSpoofRejected(t *testing.T) {
	nt0, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt0.Close()
	nt0.SetPeers(map[types.ReplicaID]string{0: nt0.Addr().String(), 1: "127.0.0.1:1"})

	obs, err := tcpnet.DialObservers(tcpnet.ObserverConfig{
		ID:        1, // a voting replica's identity
		Upstreams: map[types.ReplicaID]string{0: nt0.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	waitCond(t, "spoofed handshake rejection", func() bool {
		return nt0.FrameStats().Spoofed >= 1
	})
	if nt0.Observers() != 0 {
		t.Fatal("spoofed observer registered")
	}
}

// TestObserverReconnectResumes: after an observer connection dies, a new
// observer with the same identity re-registers and the mirror stream resumes
// — the transport half of crash recovery (the engine half re-syncs state via
// statesync, tested in internal/observer).
func TestObserverReconnectResumes(t *testing.T) {
	nt0, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt0.Close()
	nt0.SetPeers(map[types.ReplicaID]string{0: nt0.Addr().String()})

	obs1, err := tcpnet.DialObservers(tcpnet.ObserverConfig{
		ID:        4,
		Upstreams: map[types.ReplicaID]string{0: nt0.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "first observer attach", func() bool { return nt0.Observers() == 1 })

	nt0.FeedLocal(&types.Proposal{Block: testBlock(1), Round: 1, Sender: 0})
	if _, got := recvMsg[*types.Proposal](t, obs1.Recv()); got.Round != 1 {
		t.Fatal("first observer missed the mirror frame")
	}

	// Crash: the observer process goes away; the replica notices and
	// deregisters the sink.
	obs1.Close()
	waitCond(t, "observer deregistration", func() bool { return nt0.Observers() == 0 })

	// Restart: same identity reconnects and mirroring resumes.
	obs2, err := tcpnet.DialObservers(tcpnet.ObserverConfig{
		ID:        4,
		Upstreams: map[types.ReplicaID]string{0: nt0.Addr().String()},
		DialRetry: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer obs2.Close()
	waitCond(t, "observer re-attach", func() bool { return nt0.Observers() == 1 })

	nt0.FeedLocal(&types.Proposal{Block: testBlock(2), Round: 2, Sender: 0})
	if _, got := recvMsg[*types.Proposal](t, obs2.Recv()); got.Round != 2 {
		t.Fatal("restarted observer missed the mirror frame")
	}
}

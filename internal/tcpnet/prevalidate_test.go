package tcpnet_test

import (
	"encoding/gob"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/tcpnet"
	"repro/internal/types"
)

// rawPeer dials the transport and speaks the wire protocol directly, so the
// tests can inject spoofed and malformed frames.
type rawPeer struct {
	conn net.Conn
	enc  *gob.Encoder
}

type rawHello struct{ From types.ReplicaID }
type rawEnvelope struct {
	From types.ReplicaID
	Msg  types.Message
}

func dialRaw(t *testing.T, addr string, from types.ReplicaID) *rawPeer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(rawHello{From: from}); err != nil {
		t.Fatal(err)
	}
	return &rawPeer{conn: conn, enc: enc}
}

func (p *rawPeer) send(t *testing.T, env rawEnvelope) {
	t.Helper()
	if err := p.enc.Encode(env); err != nil {
		t.Fatal(err)
	}
}

// waitStats polls until the predicate holds or the deadline passes —
// reader-loop counters update asynchronously.
func waitStats(t *testing.T, n *tcpnet.Net, ok func(tcpnet.FrameStats) bool) tcpnet.FrameStats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := n.FrameStats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFrameStatsCounters pins the dropped-frame accounting: spoofed frames
// (sender differs from the handshake identity) and malformed frames (nil
// message) are counted instead of vanishing silently, and genuine frames
// still flow.
func TestFrameStatsCounters(t *testing.T) {
	tcpnet.RegisterMessages()
	nt, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	p := dialRaw(t, nt.Addr().String(), 2)
	defer p.conn.Close()
	p.send(t, rawEnvelope{From: 3, Msg: &types.VoteMsg{Vote: types.Vote{Round: 1}}}) // spoofed
	p.send(t, rawEnvelope{From: 2, Msg: nil})                                        // malformed
	p.send(t, rawEnvelope{From: 3, Msg: &types.VoteMsg{Vote: types.Vote{Round: 2}}}) // spoofed again
	p.send(t, rawEnvelope{From: 2, Msg: &types.VoteMsg{Vote: types.Vote{Round: 3}}}) // genuine

	select {
	case in := <-nt.Recv():
		if in.From != 2 || in.Verified {
			t.Fatalf("unexpected inbound %+v (no Prevalidate hook, Verified must be false)", in)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("genuine frame never arrived")
	}
	st := waitStats(t, nt, func(st tcpnet.FrameStats) bool {
		return st.Spoofed == 2 && st.Malformed == 1
	})
	if st.Prevalidated != 0 {
		t.Fatalf("prevalidated drops %d without a hook", st.Prevalidated)
	}
}

// TestSelfHandshakeRejected pins the transport-level identity rule: a peer
// handshaking as the node's own ID is spoofing by definition (engines treat
// from == self as trusted loopback) and must produce no inbound messages.
func TestSelfHandshakeRejected(t *testing.T) {
	tcpnet.RegisterMessages()
	nt, err := tcpnet.Listen(tcpnet.Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	p := dialRaw(t, nt.Addr().String(), 0) // claims to be the node itself
	defer p.conn.Close()
	p.send(t, rawEnvelope{From: 0, Msg: &types.VoteMsg{Vote: types.Vote{Round: 1}}})

	waitStats(t, nt, func(st tcpnet.FrameStats) bool { return st.Spoofed == 1 })
	select {
	case in := <-nt.Recv():
		t.Fatalf("self-handshake connection delivered %+v", in)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestPrevalidateHookOnReadLoop pins the reader-goroutine prevalidation:
// frames failing the hook are dropped and counted, frames passing it surface
// with Verified set.
func TestPrevalidateHookOnReadLoop(t *testing.T) {
	tcpnet.RegisterMessages()
	nt, err := tcpnet.Listen(tcpnet.Config{
		ID:     0,
		Listen: "127.0.0.1:0",
		Prevalidate: func(from types.ReplicaID, msg types.Message) error {
			if vm, ok := msg.(*types.VoteMsg); ok && vm.Vote.Round%2 == 1 {
				return fmt.Errorf("odd round %d", vm.Vote.Round)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	p := dialRaw(t, nt.Addr().String(), 1)
	defer p.conn.Close()
	for round := types.Round(1); round <= 6; round++ {
		p.send(t, rawEnvelope{From: 1, Msg: &types.VoteMsg{Vote: types.Vote{Round: round}}})
	}

	var got []types.Round
	for len(got) < 3 {
		select {
		case in := <-nt.Recv():
			if !in.Verified {
				t.Fatalf("hook-passed frame not marked verified: %+v", in)
			}
			got = append(got, in.Msg.(*types.VoteMsg).Vote.Round)
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d frames arrived", len(got))
		}
	}
	for i, r := range got {
		if r != types.Round(2*(i+1)) {
			t.Fatalf("frame %d has round %d, want %d (per-sender FIFO through the hook)", i, r, 2*(i+1))
		}
	}
	st := waitStats(t, nt, func(st tcpnet.FrameStats) bool { return st.Prevalidated == 3 })
	if st.Spoofed != 0 || st.Malformed != 0 {
		t.Fatalf("unexpected spoof/malform counts: %+v", st)
	}
}

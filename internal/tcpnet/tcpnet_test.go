package tcpnet_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/diembft"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
	"repro/internal/types"
)

func TestTCPClusterCommits(t *testing.T) {
	const (
		n = 4
		f = 1
	)
	ring, err := crypto.NewKeyRing(n, 5, crypto.SchemeEd25519)
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}

	// Bind all listeners on loopback with OS-assigned ports first, then
	// share the address book.
	nets := make([]*tcpnet.Net, n)
	peers := make(map[types.ReplicaID]string, n)
	for i := 0; i < n; i++ {
		nt, err := tcpnet.Listen(tcpnet.Config{
			ID:     types.ReplicaID(i),
			Listen: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		nets[i] = nt
		peers[types.ReplicaID(i)] = nt.Addr().String()
	}
	for i := 0; i < n; i++ {
		nets[i].SetPeers(peers)
	}

	var mu sync.Mutex
	commits := make(map[types.ReplicaID]int)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		rep, err := diembft.New(diembft.Config{
			ID:               id,
			N:                n,
			F:                f,
			Signer:           ring.Signer(id),
			Verifier:         ring,
			VerifySignatures: true,
			SFT:              true,
			RoundTimeout:     400 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		node, err := runtime.NewNode(rep, nets[i], runtime.Options{
			N: n,
			OnCommit: func(b *types.Block) {
				mu.Lock()
				commits[id]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = node.Run(ctx)
		}()
	}

	deadline := time.After(60 * time.Second)
	for {
		mu.Lock()
		enough := len(commits) == n
		for _, c := range commits {
			if c < 5 {
				enough = false
			}
		}
		snapshot := fmt.Sprintf("%v", commits)
		mu.Unlock()
		if enough {
			break
		}
		select {
		case <-deadline:
			cancel()
			t.Fatalf("TCP cluster too slow: %s", snapshot)
		case <-time.After(100 * time.Millisecond):
		}
	}
	cancel()
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := nets[i].Close(); err != nil {
			t.Errorf("close %d: %v", i, err)
		}
	}
}

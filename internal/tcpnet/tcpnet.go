// Package tcpnet is the TCP transport for real (non-simulated) clusters:
// length-delimited gob frames over persistent connections, lazy dialing
// with retry, and a handshake identifying the sending replica. It
// implements runtime.Transport.
package tcpnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/types"
)

// registerOnce registers the concrete message types with gob exactly once.
var registerOnce sync.Once

// RegisterMessages registers all consensus message types for gob transport.
// Safe to call multiple times.
func RegisterMessages() {
	registerOnce.Do(func() {
		gob.Register(&types.Proposal{})
		gob.Register(&types.VoteMsg{})
		gob.Register(&types.Timeout{})
		gob.Register(&types.Echo{})
		gob.Register(&types.ExtraVote{})
		gob.Register(&types.SyncRequest{})
		gob.Register(&types.SyncResponse{})
		gob.Register(&types.StateSyncRequest{})
		gob.Register(&types.StateSyncResponse{})
		gob.Register(&types.RoundEntry{})
	})
}

// envelope is the gob frame exchanged on the wire.
type envelope struct {
	From types.ReplicaID
	Msg  types.Message
}

// hello is the first frame on every outbound connection. Observer marks a
// non-voting read-only follower (internal/observer): the replica mirrors
// consensus traffic to it and restricts what it may send back. The field is
// a gob-compatible extension — old peers decode it as absent/false.
type hello struct {
	From     types.ReplicaID
	Observer bool
}

// Config describes one replica's view of the cluster.
type Config struct {
	// ID is this replica.
	ID types.ReplicaID
	// Listen is the local address to accept peers on, e.g. "127.0.0.1:7001".
	Listen string
	// Peers maps every replica ID (including self, which is ignored) to its
	// dialable address.
	Peers map[types.ReplicaID]string
	// DialRetry is the pause between failed dials (default 250ms).
	DialRetry time.Duration
	// Prevalidate, if non-nil, runs on every decoded frame while still on
	// its connection's reader goroutine — one goroutine per peer, so
	// signature checking parallelizes across senders with per-sender FIFO
	// order intact. Frames that fail are dropped (and counted); frames that
	// pass surface with Inbound.Verified set, telling the engine loop to
	// skip its own signature checks. Wire it to engine.Pipelined.Prevalidate.
	Prevalidate func(from types.ReplicaID, msg types.Message) error
	// Obs, if non-nil, receives per-peer frame/byte counts and
	// prevalidation outcomes (see internal/obs).
	Obs *obs.Obs
}

// countWriter counts bytes written through it. Callers serialize access
// (Send holds the per-peer lock across Encode and take).
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countWriter) take() int64 {
	n := c.n
	c.n = 0
	return n
}

// countReader counts bytes read through it; only the connection's reader
// goroutine touches it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) take() int64 {
	n := c.n
	c.n = 0
	return n
}

// FrameStats counts frames the transport dropped before they reached the
// engine, split by cause. Silent drops are invisible in production — a peer
// spraying garbage looks identical to a quiet network — so the reader loops
// count every discard.
type FrameStats struct {
	// Spoofed frames claimed a sender other than the connection's
	// handshake identity.
	Spoofed int64
	// Malformed frames decoded to a nil message, or broke the gob stream
	// mid-connection (which terminates that connection).
	Malformed int64
	// Prevalidated frames failed the Prevalidate hook (bad signature or
	// certificate).
	Prevalidated int64
	// Restricted frames arrived on an observer connection with a message
	// type observers may not send (anything beyond sync requests). Observers
	// are read-only peers; their frames must never reach the engine loop.
	Restricted int64
}

// Net is a TCP-backed runtime.Transport.
type Net struct {
	cfg  Config
	ln   net.Listener
	recv chan runtime.Inbound

	spoofed      metrics.Counter
	malformed    metrics.Counter
	prevalidated metrics.Counter
	restricted   metrics.Counter

	mu        sync.Mutex
	conns     map[types.ReplicaID]*peerConn
	accepted  map[net.Conn]bool
	observers map[types.ReplicaID]*obsSink
	closed    bool
	wg        sync.WaitGroup
	closing   chan struct{}
}

// FrameStats returns a snapshot of the dropped-frame counters.
func (n *Net) FrameStats() FrameStats {
	return FrameStats{
		Spoofed:      n.spoofed.Load(),
		Malformed:    n.malformed.Load(),
		Prevalidated: n.prevalidated.Load(),
		Restricted:   n.restricted.Load(),
	}
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	cw   *countWriter
}

// Listen starts accepting peer connections and returns the transport.
func Listen(cfg Config) (*Net, error) {
	RegisterMessages()
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	n := &Net{
		cfg:       cfg,
		ln:        ln,
		recv:      make(chan runtime.Inbound, 4096),
		conns:     make(map[types.ReplicaID]*peerConn),
		accepted:  make(map[net.Conn]bool),
		observers: make(map[types.ReplicaID]*obsSink),
		closing:   make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address.
func (n *Net) Addr() net.Addr { return n.ln.Addr() }

// SetPeers installs or replaces the peer address book. Useful when ports
// are OS-assigned and only known after all listeners are up.
func (n *Net) SetPeers(peers map[types.ReplicaID]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := make(map[types.ReplicaID]string, len(peers))
	for k, v := range peers {
		cp[k] = v
	}
	n.cfg.Peers = cp
}

// Recv implements runtime.Transport.
func (n *Net) Recv() <-chan runtime.Inbound { return n.recv }

// Send implements runtime.Transport, dialing the peer on first use.
// Sends addressed to an attached observer (a non-peer ID that completed an
// observer handshake) are routed to its mirror queue instead — that is how
// state-sync responses reach observers without them being dialable peers.
func (n *Net) Send(to types.ReplicaID, msg types.Message) error {
	n.mu.Lock()
	sink, isObserver := n.observers[to]
	n.mu.Unlock()
	if isObserver {
		n.sinkDeliver(sink, envelope{From: n.cfg.ID, Msg: msg})
		return nil
	}
	pc, err := n.peer(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if err := pc.enc.Encode(envelope{From: n.cfg.ID, Msg: msg}); err != nil {
		// Connection broke: forget it so the next Send redials.
		n.dropPeer(to, pc)
		return fmt.Errorf("tcpnet: send to %v: %w", to, err)
	}
	n.cfg.Obs.OnFrameOut(to, pc.cw.take())
	return nil
}

// Close shuts the transport down.
func (n *Net) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.closing)
	conns := n.conns
	n.conns = map[types.ReplicaID]*peerConn{}
	inbound := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		inbound = append(inbound, c)
	}
	n.accepted = map[net.Conn]bool{}
	n.observers = map[types.ReplicaID]*obsSink{}
	n.mu.Unlock()

	err := n.ln.Close()
	for _, pc := range conns {
		pc.mu.Lock()
		_ = pc.conn.Close()
		pc.mu.Unlock()
	}
	// Close accepted connections too, or idle readLoops would block
	// wg.Wait forever.
	for _, c := range inbound {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.recv)
	return err
}

func (n *Net) peer(to types.ReplicaID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: closed")
	}
	if pc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.cfg.Peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: unknown peer %v", to)
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %v: %w", to, err)
	}
	cw := &countWriter{w: conn}
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(hello{From: n.cfg.ID}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("tcpnet: handshake with %v: %w", to, err)
	}
	cw.take() // the handshake is not a consensus frame
	pc := &peerConn{conn: conn, enc: enc, cw: cw}
	n.mu.Lock()
	if existing, ok := n.conns[to]; ok {
		// Raced with another Send; keep the established one.
		n.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	n.conns[to] = pc
	n.mu.Unlock()
	return pc, nil
}

func (n *Net) dropPeer(id types.ReplicaID, pc *peerConn) {
	_ = pc.conn.Close()
	n.mu.Lock()
	if n.conns[id] == pc {
		delete(n.conns, id)
	}
	n.mu.Unlock()
}

func (n *Net) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Net) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	cr := &countReader{r: conn}
	n.serveFramesCounted(gob.NewDecoder(cr), cr, conn)
}

// serveFrames drains one peer connection's frame stream: the identifying
// handshake first, then envelopes, with spoofed/malformed/prevalidation
// filtering. Factored off readLoop so the frame parser can be fuzzed
// against raw attacker-controlled bytes without a socket.
func (n *Net) serveFrames(dec *gob.Decoder) {
	n.serveFramesCounted(dec, nil, nil)
}

// serveFramesCounted is serveFrames with an optional byte counter wrapped
// around the decoder's source; every decoded envelope (accepted or dropped —
// both are real traffic from the peer) is charged to the connection's
// handshake identity. conn, when non-nil, is the underlying socket — needed
// to attach a mirror sink when the handshake declares an observer.
func (n *Net) serveFramesCounted(dec *gob.Decoder, cr *countReader, conn net.Conn) {
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	if cr != nil {
		cr.take() // the handshake is not a consensus frame
	}
	if h.From == n.cfg.ID {
		// A peer claiming to be this node is spoofing by definition —
		// engines treat from == self as trusted local loopback, so such a
		// connection must never produce inbound messages.
		n.spoofed.Inc()
		return
	}
	if h.Observer {
		if _, isPeer := n.cfg.Peers[h.From]; isPeer {
			// A voting peer masquerading as an observer would get consensus
			// traffic mirrored back at it while dodging the peer path.
			n.spoofed.Inc()
			return
		}
		if conn != nil {
			sink := n.registerObserver(h.From, conn)
			if sink != nil {
				defer n.dropObserver(h.From, sink)
			}
		}
	}
	for {
		var env envelope
		err := dec.Decode(&env)
		if cr != nil && err == nil {
			n.cfg.Obs.OnFrameIn(h.From, cr.take())
		}
		if err != nil {
			// A garbage frame mid-stream is malformed (it also
			// desynchronizes the gob stream, so the connection ends here).
			// Transport failures — peer crash, reset, truncation — are
			// ordinary disconnects, not garbage: counting them would make a
			// healthy cluster under routine restarts indistinguishable from
			// one being sprayed with junk.
			if isDecodeGarbage(err) && !n.isClosing() {
				n.malformed.Inc()
			}
			return
		}
		if env.From != h.From {
			n.spoofed.Inc()
			continue
		}
		if env.Msg == nil {
			n.malformed.Inc()
			continue
		}
		if h.Observer && !observerMay(env.Msg) {
			// Observers are read-only: only catch-up requests may reach the
			// engine loop; a vote or proposal from one is an attack, not load.
			n.restricted.Inc()
			continue
		}
		verified := false
		if n.cfg.Prevalidate != nil {
			// Stateless signature/certificate checks run here, on the
			// per-connection reader goroutine, so the engine loop receives
			// the frame pre-verified. One reader per peer keeps per-sender
			// FIFO order while spreading crypto across cores.
			if err := n.cfg.Prevalidate(env.From, env.Msg); err != nil {
				n.prevalidated.Inc()
				n.cfg.Obs.OnPrevalidate(true)
				continue
			}
			n.cfg.Obs.OnPrevalidate(false)
			verified = true
		}
		if !h.Observer {
			// Mirror accepted consensus frames from voting peers to attached
			// observers (the replica's own broadcasts arrive via FeedLocal).
			n.mirror(env)
		}
		select {
		case n.recv <- runtime.Inbound{From: env.From, Msg: env.Msg, Verified: verified}:
		case <-n.closing:
			return
		}
	}
}

func (n *Net) isClosing() bool {
	select {
	case <-n.closing:
		return true
	default:
		return false
	}
}

// obsSinkDepth bounds each observer's mirror queue. A stalled observer is
// disconnected when its queue fills — replica reader goroutines never block
// on observer back-pressure, and the observer heals the gap via state sync
// when it reconnects.
const obsSinkDepth = 1024

// obsSink is the replica-side write end of one attached observer: a bounded
// queue drained by a dedicated writer goroutine.
type obsSink struct {
	conn net.Conn
	ch   chan envelope
	stop chan struct{} // closed once to disconnect the sink
	once sync.Once
}

func (s *obsSink) close() {
	s.once.Do(func() { close(s.stop) })
}

// Observers reports how many observer connections are currently attached.
func (n *Net) Observers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.observers)
}

// registerObserver attaches a mirror sink for an observer handshake; a
// reconnect under the same ID replaces (and disconnects) the previous sink.
func (n *Net) registerObserver(id types.ReplicaID, conn net.Conn) *obsSink {
	sink := &obsSink{conn: conn, ch: make(chan envelope, obsSinkDepth), stop: make(chan struct{})}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	old := n.observers[id]
	n.observers[id] = sink
	n.wg.Add(1)
	n.mu.Unlock()
	if old != nil {
		old.close()
	}
	go n.sinkWriter(id, sink)
	return sink
}

func (n *Net) dropObserver(id types.ReplicaID, sink *obsSink) {
	sink.close()
	n.mu.Lock()
	if n.observers[id] == sink {
		delete(n.observers, id)
	}
	n.mu.Unlock()
}

// sinkWriter drains one observer's mirror queue onto its socket. It shares
// the socket with the observer's reader goroutine only for Close, which is
// safe on net.Conn.
func (n *Net) sinkWriter(id types.ReplicaID, sink *obsSink) {
	defer n.wg.Done()
	defer sink.conn.Close()
	cw := &countWriter{w: sink.conn}
	enc := gob.NewEncoder(cw)
	for {
		select {
		case env := <-sink.ch:
			if err := enc.Encode(env); err != nil {
				n.dropObserver(id, sink)
				return
			}
			n.cfg.Obs.OnFrameOut(id, cw.take())
		case <-sink.stop:
			return
		case <-n.closing:
			return
		}
	}
}

// sinkDeliver enqueues one envelope for an observer without ever blocking;
// a full queue means the observer is too slow to follow and is disconnected.
func (n *Net) sinkDeliver(sink *obsSink, env envelope) {
	select {
	case sink.ch <- env:
	default:
		sink.close()
	}
}

// mirror relays one accepted consensus frame to every attached observer.
func (n *Net) mirror(env envelope) {
	if !mirrorable(env.Msg) {
		return
	}
	n.mu.Lock()
	if len(n.observers) == 0 {
		n.mu.Unlock()
		return
	}
	sinks := make([]*obsSink, 0, len(n.observers))
	for _, s := range n.observers {
		sinks = append(sinks, s)
	}
	n.mu.Unlock()
	for _, s := range sinks {
		n.sinkDeliver(s, env)
	}
}

// FeedLocal mirrors one of this replica's own broadcast messages to attached
// observers; runtime.Node calls it once per Broadcast output (see
// runtime.Feeder). Without it a leader's own proposals would never reach
// observers attached only to that leader.
func (n *Net) FeedLocal(msg types.Message) {
	n.mirror(envelope{From: n.cfg.ID, Msg: msg})
}

// mirrorable limits mirroring to the certified-chain traffic an observer
// follows: proposals (blocks + embedded justify QCs), echoes of proposals,
// and round entries (QC/TC round-advance justifications). Votes and sync
// chatter stay between voting peers.
func mirrorable(msg types.Message) bool {
	switch msg.(type) {
	case *types.Proposal, *types.Echo, *types.RoundEntry:
		return true
	}
	return false
}

// observerMay whitelists what an observer connection can feed the engine:
// catch-up requests only.
func observerMay(msg types.Message) bool {
	switch msg.(type) {
	case *types.SyncRequest, *types.StateSyncRequest:
		return true
	}
	return false
}

// isDecodeGarbage distinguishes a corrupt frame from an ordinary transport
// failure: EOF variants, closed sockets, and network-level errors all mean
// the peer went away, not that it sent garbage.
func isDecodeGarbage(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	return !errors.As(err, &ne)
}

package repro_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// experiment index). Each benchmark runs the corresponding experiment on the
// discrete-event simulator at reduced scale (n=31, one virtual minute) so
// `go test -bench=.` finishes in minutes; cmd/sftbench runs the same
// experiments at paper scale (n=100, five virtual minutes).
//
// Reported custom metrics are the paper's own units: seconds of commit
// latency per resilience level (lat_1.0f_s ... lat_2.0f_s), transactions per
// second, and messages per block decision.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/harness"
)

const (
	benchN        = 31
	benchF        = 10
	benchDuration = 60 * time.Second
)

func benchScale(seed int64) harness.Scale {
	return harness.Scale{N: benchN, F: benchF, Duration: benchDuration, Seed: seed}
}

func reportLevels(b *testing.B, res *harness.Result, f int) {
	b.Helper()
	for _, lv := range harness.DefaultLevels(f) {
		s := res.LevelLatency[lv]
		if s.Count > 0 {
			b.ReportMetric(s.Mean, "lat_"+harness.LevelLabel(lv, f)+"_s")
		}
	}
	b.ReportMetric(res.RegularLatency.Mean, "regular_s")
	b.ReportMetric(float64(res.CommittedBlocks), "blocks")
}

// BenchmarkFigure7a — strong commit latency vs x, symmetric geo-distribution
// (Figure 7a), δ ∈ {100ms, 200ms}.
func BenchmarkFigure7a(b *testing.B) {
	for _, delta := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("delta=%v", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Figure7a(benchScale(int64(i+1)), delta)
				if err != nil {
					b.Fatal(err)
				}
				reportLevels(b, res, benchF)
			}
		})
	}
}

// BenchmarkFigure7b — strong commit latency vs x, asymmetric geo-distribution
// (Figure 7b). At δ=200ms levels above ~1.7f are unreachable (outcast region).
func BenchmarkFigure7b(b *testing.B) {
	for _, delta := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("delta=%v", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Figure7b(benchScale(int64(i+1)), delta)
				if err != nil {
					b.Fatal(err)
				}
				reportLevels(b, res, benchF)
			}
		})
	}
}

// BenchmarkFigure8 — regular vs strong commit latency trade-off as the
// leader extra-wait grows (Figure 8).
func BenchmarkFigure8(b *testing.B) {
	for _, wait := range []time.Duration{0, 100 * time.Millisecond, 250 * time.Millisecond} {
		b.Run(fmt.Sprintf("wait=%v", wait), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := harness.Figure8(benchScale(int64(i+1)), []time.Duration{wait})
				if err != nil {
					b.Fatal(err)
				}
				res := points[0].Result
				b.ReportMetric(res.RegularLatency.Mean, "regular_s")
				if s := res.LevelLatency[2*benchF]; s.Count > 0 {
					b.ReportMetric(s.Mean, "lat_2.0f_s")
				}
			}
		})
	}
}

// BenchmarkThroughput — §4's throughput/latency parity claim: DiemBFT vs
// SFT-DiemBFT.
func BenchmarkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, sft, err := harness.ThroughputComparison(benchScale(int64(i+1)), 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.ThroughputTPS, "diembft_tps")
		b.ReportMetric(sft.ThroughputTPS, "sft_tps")
		b.ReportMetric(base.RegularLatency.Mean, "diembft_regular_s")
		b.ReportMetric(sft.RegularLatency.Mean, "sft_regular_s")
	}
}

// BenchmarkMessageComplexity — §3.2/Appendix B: msgs per decision, SFT
// (linear) vs FBFT-adapted (quadratic), n ∈ {7, 16, 31}.
func BenchmarkMessageComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.MessageComplexity(harness.Scale{Duration: 30 * time.Second, Seed: int64(i + 1)}, []int{2, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.SFTMsgsPerDec, fmt.Sprintf("sft_msgs_n%d", p.N))
			b.ReportMetric(p.FBFTMsgsPer, fmt.Sprintf("fbft_msgs_n%d", p.N))
		}
	}
}

// BenchmarkTheorem2 — liveness under c benign crashes: latency to the
// (2f-c)-strong target.
func BenchmarkTheorem2(b *testing.B) {
	for _, c := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("crashes=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, target, err := harness.Theorem2(harness.Scale{N: 13, F: 4, Duration: benchDuration, Seed: int64(i + 1)}, c)
				if err != nil {
					b.Fatal(err)
				}
				if s := res.LevelLatency[target]; s.Count > 0 {
					b.ReportMetric(s.Mean, "target_lat_s")
				}
			}
		})
	}
}

// BenchmarkTheorem3 — marker vs interval strong-votes under t equivocating
// Byzantine replicas: latency to the (2f-t)-strong target.
func BenchmarkTheorem3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		marker, interval, target, err := harness.Theorem3(harness.Scale{N: 13, F: 4, Duration: benchDuration, Seed: int64(i + 1)}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if s := marker.LevelLatency[target]; s.Count > 0 {
			b.ReportMetric(s.Mean, "marker_lat_s")
		}
		if s := interval.LevelLatency[target]; s.Count > 0 {
			b.ReportMetric(s.Mean, "interval_lat_s")
		}
	}
}

// BenchmarkStreamlet — Appendix D: SFT-Streamlet strong commit latencies.
func BenchmarkStreamlet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.StreamletLatency(harness.Scale{N: 13, F: 4, Duration: benchDuration, Seed: int64(i + 1)}, 50*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		reportLevels(b, res, 4)
	}
}

// BenchmarkCrashRecovery — PR-2 durability workload: kill a replica at T/3,
// restore it from its WAL at T/2, state-sync rejoin; reports the recovered
// replica's final height against the observer's plus the shared committed
// prefix. The run fails outright if the recovered replica commits anything
// inconsistent.
func BenchmarkCrashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.CrashRecovery(
			harness.Scale{N: 13, F: 4, Duration: benchDuration, Seed: int64(i + 1)},
			50*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consistent {
			b.Fatal("crash recovery produced inconsistent commits")
		}
		b.ReportMetric(float64(res.VictimHeight), "victim_height")
		b.ReportMetric(float64(res.ObserverHeight), "observer_height")
		b.ReportMetric(float64(res.SharedPrefix), "shared_prefix")
	}
}

// BenchmarkAblationVoteMode — DESIGN.md ablation: marker vs interval votes
// in a fault-free run (bookkeeping/size cost of the richer votes).
func BenchmarkAblationVoteMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		marker, interval, _, err := harness.Theorem3(harness.Scale{N: 13, F: 4, Duration: benchDuration, Seed: int64(i + 1)}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(marker.Msgs.Bytes)/float64(marker.CommittedBlocks), "marker_bytes_per_block")
		b.ReportMetric(float64(interval.Msgs.Bytes)/float64(interval.CommittedBlocks), "interval_bytes_per_block")
	}
}

// BenchmarkAblationBookkeeping — DESIGN.md ablation: wall-clock cost of the
// SFT endorsement tracking (events processed per second with SFT on vs off).
func BenchmarkAblationBookkeeping(b *testing.B) {
	run := func(b *testing.B, sft bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			base, sftRes, err := harness.ThroughputComparison(benchScale(int64(i+1)), 100*time.Millisecond)
			if err != nil {
				b.Fatal(err)
			}
			if sft {
				b.ReportMetric(float64(sftRes.Events), "events")
			} else {
				b.ReportMetric(float64(base.Events), "events")
			}
		}
	}
	b.Run("sft=off", func(b *testing.B) { run(b, false) })
	b.Run("sft=on", func(b *testing.B) { run(b, true) })
}

#!/usr/bin/env bash
# gateway_smoke.sh — end-to-end smoke of the access tier over real binaries:
# start a 4-replica sftnode cluster, attach an sftgateway (observer + gateway
# + ops surface), then run the sftclient -subscribe probe, which must verify
# streamed strength proofs against the committee's PKI. Finishes by checking
# the gateway's /metrics families and /healthz payload.
set -euo pipefail

BINDIR=$(mktemp -d)
OBS_PORT=${OBS_PORT:-17991}
BASE_PORT=${BASE_PORT:-17910}
GW_PORT=${GW_PORT:-17980}
PEERS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2)),127.0.0.1:$((BASE_PORT + 3))"

go build -o "$BINDIR/sftnode" ./cmd/sftnode
go build -o "$BINDIR/sftgateway" ./cmd/sftgateway
go build -o "$BINDIR/sftclient" ./cmd/sftclient

pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BINDIR"
}
trap cleanup EXIT

for id in 0 1 2 3; do
    "$BINDIR/sftnode" -id "$id" -n 4 -listen "127.0.0.1:$((BASE_PORT + id))" \
        -peers "$PEERS" -timeout 1s -txns 10 -quiet &
    pids+=($!)
done

"$BINDIR/sftgateway" -n 4 -upstreams "$PEERS" -listen "127.0.0.1:${GW_PORT}" \
    -obs-addr "127.0.0.1:${OBS_PORT}" &
pids+=($!)

base="http://127.0.0.1:${OBS_PORT}"

# Wait for the gateway's ops server.
for i in $(seq 1 50); do
    if curl -fsS -o /dev/null "$base/healthz" 2>/dev/null; then
        break
    fi
    [ "$i" -eq 50 ] && { echo "FAIL: gateway /healthz never came up"; exit 1; }
    sleep 0.2
done

# The probe is the real acceptance check: it must receive 3 strength events
# whose Section 5 proofs verify client-side against the cluster's PKI.
"$BINDIR/sftclient" -subscribe "127.0.0.1:${GW_PORT}" -n 4 -seed 42 -count 3 -run 60s \
    || { echo "FAIL: subscribe probe"; exit 1; }
echo "OK: subscribe probe verified 3 events"

# The gateway must have proven strength for some blocks by now.
health=$(curl -fsS "$base/healthz")
grep -q '"status":"ok"' <<<"$health" || { echo "FAIL: /healthz $health"; exit 1; }
proven=$(grep -o '"proven_blocks":[0-9]*' <<<"$health" | cut -d: -f2)
if [ "${proven:-0}" -le 0 ]; then
    echo "FAIL: /healthz reports no proven blocks: $health"
    exit 1
fi
echo "OK: /healthz 200, proven_blocks=$proven"

# Exposition well-formedness plus the sft_gateway_* families the read-path
# dashboards key on.
metrics=$(curl -fsS "$base/metrics")
bad=$(grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$)' <<<"$metrics" || true)
if [ -n "$bad" ]; then
    echo "FAIL: malformed exposition lines:"
    echo "$bad"
    exit 1
fi
for fam in sft_gateway_subscribers sft_gateway_events_total \
    sft_gateway_certified_ingested_total sft_gateway_frames_sent_total; do
    if ! grep -q "^$fam" <<<"$metrics"; then
        echo "FAIL: metric family $fam missing from /metrics"
        exit 1
    fi
done
ingested=$(awk '$1 == "sft_gateway_certified_ingested_total" {print $2}' <<<"$metrics")
if [ "${ingested:-0}" -le 0 ]; then
    echo "FAIL: gateway ingested no certified pairs"
    exit 1
fi
echo "OK: /metrics well-formed, sft_gateway_certified_ingested_total=$ingested"

echo "gateway smoke: PASS"

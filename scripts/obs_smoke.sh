#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke of the sftnode ops surface: start a
# 4-replica local cluster with -obs-addr, then assert /metrics serves
# well-formed Prometheus text exposition, /healthz answers 200, and /tracez
# and /debug/pprof/ respond. Fails on any malformed exposition line, missing
# metric family, or non-200 status.
set -euo pipefail

BIN=$(mktemp -d)/sftnode
OBS_PORT=${OBS_PORT:-17990}
BASE_PORT=${BASE_PORT:-17900}
PEERS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2)),127.0.0.1:$((BASE_PORT + 3))"

go build -o "$BIN" ./cmd/sftnode

pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

for id in 0 1 2 3; do
    args=(-id "$id" -n 4 -listen "127.0.0.1:$((BASE_PORT + id))" -peers "$PEERS" \
        -timeout 1s -txns 10 -quiet)
    if [ "$id" -eq 0 ]; then
        args+=(-obs-addr "127.0.0.1:${OBS_PORT}")
    fi
    "$BIN" "${args[@]}" &
    pids+=($!)
done

base="http://127.0.0.1:${OBS_PORT}"

# Wait for the ops server, then for consensus to commit something.
for i in $(seq 1 50); do
    if curl -fsS -o /dev/null "$base/healthz" 2>/dev/null; then
        break
    fi
    [ "$i" -eq 50 ] && { echo "FAIL: /healthz never came up"; exit 1; }
    sleep 0.2
done

commits=0
for i in $(seq 1 100); do
    commits=$(curl -fsS "$base/metrics" | awk '$1 == "sft_commits_total" {print $2}')
    [ "${commits:-0}" -gt 0 ] && break
    sleep 0.2
done
if [ "${commits:-0}" -le 0 ]; then
    echo "FAIL: no commits observed via /metrics"
    exit 1
fi
echo "OK: sft_commits_total=$commits"

# /healthz must answer 200 with status ok.
health=$(curl -fsS -w '\n%{http_code}' "$base/healthz")
code=$(tail -n1 <<<"$health")
body=$(head -n1 <<<"$health")
if [ "$code" != "200" ] || ! grep -q '"status":"ok"' <<<"$body"; then
    echo "FAIL: /healthz code=$code body=$body"
    exit 1
fi
echo "OK: /healthz 200 $body"

# Exposition well-formedness: every non-comment line is NAME{labels} VALUE,
# and the families the dashboards key on are present.
metrics=$(curl -fsS "$base/metrics")
bad=$(grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$)' <<<"$metrics" || true)
if [ -n "$bad" ]; then
    echo "FAIL: malformed exposition lines:"
    echo "$bad"
    exit 1
fi
for fam in sft_commits_total sft_rounds_total sft_round sft_votes_sent_total \
    sft_commit_latency_seconds_bucket sft_net_frames_total sft_qcs_observed_total \
    sft_pacemaker_rejected_timeouts_total sft_round_entry_rejected_total; do
    if ! grep -q "^$fam" <<<"$metrics"; then
        echo "FAIL: metric family $fam missing from /metrics"
        exit 1
    fi
done
echo "OK: /metrics well-formed ($(grep -cv '^#' <<<"$metrics") samples)"

# /tracez carries block lifecycles; /debug/pprof/ serves the index.
traces=$(curl -fsS "$base/tracez?n=4")
grep -q '"traces":\[{' <<<"$traces" || { echo "FAIL: /tracez empty: $traces"; exit 1; }
echo "OK: /tracez has traces"
curl -fsS -o /dev/null "$base/debug/pprof/" || { echo "FAIL: /debug/pprof/"; exit 1; }
echo "OK: /debug/pprof/"

echo "obs smoke: PASS"
